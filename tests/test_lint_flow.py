"""Tests for the repro.lint whole-program dataflow engine (--flow).

Each flow rule gets at least one fixture that *must* fire and one that
*must not*, plus the CLI surface that ships with the engine: baseline v2
fingerprints (line-number independent, v1 migration), ``--changed``
git-scoped runs, ``--audit-suppressions``, and a full-repo run that must
come back clean.
"""

from __future__ import annotations

import json
import os
import subprocess
import textwrap

import pytest

from repro.lint.baseline import (
    Baseline,
    fingerprints_for,
    legacy_fingerprints_for,
    partition,
    update,
)
from repro.lint.cli import EXIT_CLEAN, EXIT_VIOLATIONS, main
from repro.lint.flow import run_flow
from repro.lint.rules import build_context, run_rules
from repro.lint.walker import LintToolError, parse_module

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
REPO_SRC = os.path.join(REPO_ROOT, "src", "repro")
COMMON_PY = os.path.join(REPO_SRC, "experiments", "common.py")


def flow(tmp_path, source, name="fixture.py", companions=(), rules=None,
         real_files=()):
    """Run the flow passes over one dedented fixture plus companions.

    *real_files* are absolute paths of genuine project modules to include
    in the index (e.g. ``common.py`` so ``cached()`` thunk calls resolve).
    Returns only findings anchored in *name*.
    """
    modules = [parse_module(path) for path in real_files]
    for fname, fsource in list(companions) + [(name, source)]:
        path = tmp_path / fname
        path.write_text(textwrap.dedent(fsource))
        modules.append(parse_module(str(path)))
    findings = run_flow(modules, rule_ids=set(rules) if rules else None)
    return [f for f in findings if f.path.endswith(name)]


# ---------------------------------------------------------------------------
# DET004 — nondeterminism taint into result/export sinks


def test_det004_cross_module_taint_into_json_dump(tmp_path):
    findings = flow(tmp_path, """
        import json

        from fixa import stamp

        def export(path):
            payload = {"at": stamp()}
            with open(path, "w") as handle:
                json.dump(payload, handle)
    """, companions=[("fixa.py", """
        import time

        def stamp():
            return time.time()
    """)], rules={"DET004"})
    assert [f.rule for f in findings] == ["DET004"]
    assert "json.dump" in findings[0].message
    assert "time.time" in findings[0].message


def test_det004_tainted_return_from_cell(tmp_path):
    findings = flow(tmp_path, """
        import time

        from repro.runner import cell_kind

        @cell_kind("fixture-det")
        def cell(params):
            return helper()

        def helper():
            return time.time()
    """, rules={"DET004"})
    assert [f.rule for f in findings] == ["DET004"]
    assert "cell" in findings[0].message


def test_det004_seeded_rng_is_clean(tmp_path):
    findings = flow(tmp_path, """
        import json
        import random

        def export(path, seed):
            rng = random.Random(seed)
            payload = {"v": rng.random(), "n": len([1, 2])}
            with open(path, "w") as handle:
                json.dump(payload, handle)
    """, rules={"DET004"})
    assert findings == []


def test_det004_inline_suppression(tmp_path):
    findings = flow(tmp_path, """
        import json
        import time

        def export(path):
            payload = {"at": time.time()}
            with open(path, "w") as handle:
                json.dump(payload, handle)  # lint: allow=DET004
    """, rules={"DET004"})
    assert findings == []


# ---------------------------------------------------------------------------
# PAR001 — no module-state writes reachable from the parallel executor


def test_par001_flags_global_mutation_under_parallelism(tmp_path):
    findings = flow(tmp_path, """
        from repro.runner import cell_kind

        RESULTS = []

        @cell_kind("fixture-par")
        def cell(params):
            record(params["x"])
            return params["x"]

        def record(value):
            RESULTS.append(value)
    """, rules={"PAR001"})
    assert [f.rule for f in findings] == ["PAR001"]
    assert "RESULTS" in findings[0].message
    assert "cell()" in findings[0].message and "record()" in findings[0].message


def test_par001_local_state_is_clean(tmp_path):
    findings = flow(tmp_path, """
        from repro.runner import cell_kind

        @cell_kind("fixture-par-ok")
        def cell(params):
            acc = []
            for value in params["xs"]:
                acc.append(value)
            return acc
    """, rules={"PAR001"})
    assert findings == []


def test_par001_unreachable_mutation_is_clean(tmp_path):
    # The write exists, but no cell ever reaches it: not a parallel hazard.
    findings = flow(tmp_path, """
        from repro.runner import cell_kind

        LOG = []

        @cell_kind("fixture-par-ok2")
        def cell(params):
            return params["x"]

        def offline_tool(value):
            LOG.append(value)
    """, rules={"PAR001"})
    assert findings == []


# ---------------------------------------------------------------------------
# PUR001 — memoized functions pure in their arguments


def test_pur001_flags_env_read_under_lru_cache(tmp_path):
    findings = flow(tmp_path, """
        import functools
        import os

        @functools.lru_cache(maxsize=None)
        def config():
            return os.environ.get("FIXTURE_KNOB", "0")
    """, rules={"PUR001"})
    assert [f.rule for f in findings] == ["PUR001"]
    assert "FIXTURE_KNOB" in findings[0].message


def test_pur001_flags_impure_cached_thunk(tmp_path):
    findings = flow(tmp_path, """
        import time

        from repro.experiments import common

        def lookup(key):
            return common.cached(key, lambda: time.time())
    """, rules={"PUR001"}, real_files=(COMMON_PY,))
    assert [f.rule for f in findings] == ["PUR001"]
    assert "time.time" in findings[0].message


def test_pur001_pure_memo_is_clean(tmp_path):
    findings = flow(tmp_path, """
        import functools

        from repro.experiments import common

        @functools.lru_cache(maxsize=None)
        def double(x):
            return x * 2

        def lookup(key, n):
            return common.cached(key, lambda: n * 3)
    """, rules={"PUR001"}, real_files=(COMMON_PY,))
    assert findings == []


# ---------------------------------------------------------------------------
# CACHE001 — cached cells read no ambient inputs outside the fingerprint


def test_cache001_flags_unfingerprinted_env_read(tmp_path):
    findings = flow(tmp_path, """
        import os

        from repro.runner import cell_kind

        @cell_kind("fixture-cache")
        def cell(params):
            return {"knob": os.environ.get("FIXTURE_KNOB", "1")}
    """, rules={"CACHE001"})
    assert [f.rule for f in findings] == ["CACHE001"]
    assert "FIXTURE_KNOB" in findings[0].message
    assert "fingerprint" in findings[0].message


def test_cache001_skips_uncached_cell_kinds(tmp_path):
    # scale/accel cells always run cache-disabled; their env reads are
    # outside the proof obligation.
    findings = flow(tmp_path, """
        import os

        from repro.runner import cell_kind

        @cell_kind("scale")
        def cell(params):
            return {"knob": os.environ.get("FIXTURE_KNOB", "1")}
    """, rules={"CACHE001"})
    assert findings == []


def test_cache001_sanctioned_env_is_clean(tmp_path):
    findings = flow(tmp_path, """
        import os

        from repro.runner import cell_kind

        @cell_kind("fixture-cache-ok")
        def cell(params):
            if os.environ.get("REPRO_DETSAN"):
                raise RuntimeError("sanitized")
            return params["x"]
    """, rules={"CACHE001"})
    assert findings == []


# ---------------------------------------------------------------------------
# Full-repo run: the tree itself must be flow-clean


def test_full_repo_flow_is_clean():
    assert main(["--flow", "--no-baseline", "--quiet", REPO_SRC]) == EXIT_CLEAN


def test_json_report_flow_flag(capsys):
    assert main(["--flow", "--no-baseline", "--json", REPO_SRC]) == EXIT_CLEAN
    report = json.loads(capsys.readouterr().out)
    assert report["flow"] is True
    assert report["summary"]["DET004"] == 0
    assert report["summary"]["PAR001"] == 0
    assert report["summary"]["PUR001"] == 0
    assert report["summary"]["CACHE001"] == 0


# ---------------------------------------------------------------------------
# Baseline v2 — line-number-independent fingerprints, v1 migration


VIOLATION_SRC = """
    import time

    def run():
        return time.time()
"""


def _lint_with_prints(directory, source):
    path = directory / "fixture.py"
    path.write_text(textwrap.dedent(source))
    module = parse_module(str(path))
    findings = run_rules([module], context=build_context([module]))
    sources = {module.path: module.lines}
    return findings, fingerprints_for(findings, sources), sources


def test_fingerprints_survive_line_shifts(tmp_path):
    (tmp_path / "a").mkdir()
    (tmp_path / "b").mkdir()
    _, prints_a, _ = _lint_with_prints(tmp_path / "a", VIOLATION_SRC)
    shifted = "# banner\n# comments\n\n" + textwrap.dedent(VIOLATION_SRC)
    _, prints_b, _ = _lint_with_prints(tmp_path / "b", shifted)
    assert prints_a and prints_a == prints_b


def test_fingerprint_anchors_on_symbol(tmp_path):
    findings, prints, _ = _lint_with_prints(tmp_path, VIOLATION_SRC)
    assert len(findings) == 1
    rule, symbol, digest = prints[0].split(":")
    assert rule == "DET001"
    assert symbol == "fixture.run"
    assert len(digest) == 8


def test_v1_baseline_still_suppresses_and_saves_as_v2(tmp_path):
    findings, prints, sources = _lint_with_prints(tmp_path, VIOLATION_SRC)
    legacy = legacy_fingerprints_for(findings, sources)
    base_path = tmp_path / "baseline.json"
    base_path.write_text(json.dumps({"version": 1, "entries": legacy}))

    base = Baseline.load(str(base_path))
    new, suppressed, stale = partition(findings, prints, base, legacy)
    assert (new, len(suppressed), stale) == ([], 1, [])

    update(base, prints).save()
    payload = json.loads(base_path.read_text())
    assert payload["version"] == 2
    assert payload["entries"] == prints


def test_unknown_baseline_version_is_tool_error(tmp_path):
    base_path = tmp_path / "baseline.json"
    base_path.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(LintToolError):
        Baseline.load(str(base_path))


def test_findings_carry_enclosing_symbol(tmp_path):
    path = tmp_path / "fixture.py"
    path.write_text(textwrap.dedent("""
        import time

        class Sim:
            def tick(self):
                return time.time()
    """))
    module = parse_module(str(path))
    findings = run_rules([module], context=build_context([module]))
    assert [f.symbol for f in findings] == ["fixture.Sim.tick"]


# ---------------------------------------------------------------------------
# --changed: git-scoped runs


def _git(repo, *args):
    subprocess.run(
        ["git", "-C", str(repo),
         "-c", "user.email=lint@test", "-c", "user.name=lint",
         *args],
        check=True, capture_output=True,
    )


def test_changed_scopes_to_modified_files(tmp_path, monkeypatch, capsys):
    _git(tmp_path, "init", "-q")
    committed = tmp_path / "committed.py"
    committed.write_text("import time\n\n\ndef run():\n    return time.time()\n")
    _git(tmp_path, "add", "committed.py")
    _git(tmp_path, "commit", "-qm", "seed")
    monkeypatch.chdir(tmp_path)

    # Nothing changed vs HEAD: the committed violation is out of scope.
    assert main(["--changed", "--no-baseline", "."]) == EXIT_CLEAN

    # An untracked file with a violation is in scope.
    touched = tmp_path / "touched.py"
    touched.write_text("import time\n\n\ndef go():\n    return time.time()\n")
    capsys.readouterr()
    assert main(["--changed", "--no-baseline", "."]) == EXIT_VIOLATIONS
    out = capsys.readouterr().out
    assert "touched.py" in out
    assert "committed.py" not in out


# ---------------------------------------------------------------------------
# --audit-suppressions: stale allow= comments fail the run


def test_audit_passes_on_live_suppression(tmp_path):
    path = tmp_path / "fixture.py"
    path.write_text(textwrap.dedent("""
        import time

        def run():
            return time.time()  # lint: allow=DET001
    """))
    assert main(["--audit-suppressions", "--quiet", str(path)]) == EXIT_CLEAN


def test_audit_flags_stale_suppression(tmp_path, capsys):
    path = tmp_path / "fixture.py"
    path.write_text(textwrap.dedent("""
        import time

        def run():
            return time.perf_counter()  # lint: allow=DET001
    """))
    assert main(["--audit-suppressions", str(path)]) == EXIT_VIOLATIONS
    out = capsys.readouterr().out
    assert "stale" in out and "DET001" in out


def test_audit_flags_unknown_rule(tmp_path, capsys):
    path = tmp_path / "fixture.py"
    path.write_text("x = 1  # lint: allow=ZZZ001\n")
    assert main(["--audit-suppressions", str(path)]) == EXIT_VIOLATIONS
    assert "unknown rule" in capsys.readouterr().out


def test_docstring_mention_is_not_a_suppression(tmp_path):
    # The directive must sit in a real comment token; prose that merely
    # mentions the syntax neither suppresses nor counts for the audit.
    path = tmp_path / "fixture.py"
    path.write_text(textwrap.dedent('''
        """Docs: write `# lint: allow=DET001` above the offending line."""

        import time

        def run():
            return time.time()
    '''))
    module = parse_module(str(path))
    assert module.allow_comments == []
    findings = run_rules([module], context=build_context([module]))
    assert [f.rule for f in findings] == ["DET001"]
