"""Tests for the Figure-4 locality-preserving key encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.keys import (
    FIRST_USABLE_SLOT,
    MAX_PATH_LEVELS,
    SLOT_SPACE,
    BlockKey,
    KeyEncodingError,
    decode_key,
    encode_path_key,
    hash_slot,
    version_hash,
    volume_id,
)
from repro.dht.keyspace import KEY_SPACE

VOL = volume_id("test-volume")
OTHER_VOL = volume_id("other-volume")

slots = st.integers(min_value=FIRST_USABLE_SLOT, max_value=SLOT_SPACE - 1)
slot_paths = st.lists(slots, min_size=0, max_size=MAX_PATH_LEVELS)


class TestVolumeId:
    def test_twenty_bytes(self):
        assert len(VOL) == 20

    def test_deterministic(self):
        assert volume_id("v") == volume_id("v")

    def test_distinct(self):
        assert VOL != OTHER_VOL


class TestEncodeDecode:
    def test_roundtrip_simple(self):
        key = encode_path_key(VOL, [1, 2, 3], block_number=7, version=9)
        parts = decode_key(key)
        assert parts.volume == VOL
        assert parts.slots[:3] == (1, 2, 3)
        assert parts.slots[3:] == (0,) * (MAX_PATH_LEVELS - 3)
        assert parts.block_number == 7
        assert parts.version == 9

    def test_key_in_ring_range(self):
        key = encode_path_key(VOL, [5])
        assert 0 <= key < KEY_SPACE

    @given(slot_paths, st.integers(min_value=0, max_value=1000),
           st.integers(min_value=0, max_value=2**32 - 1))
    def test_roundtrip_property(self, path, block, version):
        key = encode_path_key(VOL, path, block_number=block, version=version)
        parts = decode_key(key)
        assert list(parts.slots[: len(path)]) == path
        assert parts.block_number == block
        assert parts.version == version

    def test_reencode_matches(self):
        key = encode_path_key(VOL, [4, 4], block_number=2, version=1)
        assert decode_key(key).encode() == key


class TestValidation:
    def test_slot_zero_rejected_in_path(self):
        with pytest.raises(KeyEncodingError):
            encode_path_key(VOL, [0])

    def test_slot_overflow_rejected(self):
        with pytest.raises(KeyEncodingError):
            encode_path_key(VOL, [SLOT_SPACE])

    def test_path_too_deep_rejected(self):
        with pytest.raises(KeyEncodingError):
            encode_path_key(VOL, [1] * (MAX_PATH_LEVELS + 1))

    def test_overflow_requires_full_path(self):
        with pytest.raises(KeyEncodingError):
            encode_path_key(VOL, [1, 2], overflow_components=["deep"])

    def test_bad_volume_length(self):
        with pytest.raises(KeyEncodingError):
            BlockKey(b"short", (0,) * MAX_PATH_LEVELS, 0, 0, 0)


class TestNamespaceOrdering:
    """The core property: keys sort in preorder-traversal order."""

    def test_directory_before_children(self):
        directory = encode_path_key(VOL, [3], block_number=0)
        child = encode_path_key(VOL, [3, 1], block_number=0)
        assert directory < child

    def test_directory_metadata_blocks_before_children(self):
        meta9 = encode_path_key(VOL, [3], block_number=9)
        child = encode_path_key(VOL, [3, 1], block_number=0)
        assert meta9 < child

    def test_sibling_order_follows_slots(self):
        a = encode_path_key(VOL, [3, 1])
        b = encode_path_key(VOL, [3, 2])
        assert a < b

    def test_file_blocks_contiguous(self):
        inode = encode_path_key(VOL, [3, 1], block_number=0)
        b1 = encode_path_key(VOL, [3, 1], block_number=1)
        b2 = encode_path_key(VOL, [3, 1], block_number=2)
        next_file = encode_path_key(VOL, [3, 2], block_number=0)
        assert inode < b1 < b2 < next_file

    def test_subtree_is_contiguous(self):
        """All keys under /a sort between /a and /b for sibling slots a<b."""
        under_a = [
            encode_path_key(VOL, [2] + suffix, block_number=n)
            for suffix in ([], [1], [1, 5], [9])
            for n in (0, 1, 3)
        ]
        b = encode_path_key(VOL, [3])
        assert all(key < b for key in under_a)

    def test_versions_adjacent_to_block(self):
        v0 = encode_path_key(VOL, [2], block_number=1, version=0)
        v1 = encode_path_key(VOL, [2], block_number=1, version=1)
        next_block = encode_path_key(VOL, [2], block_number=2, version=0)
        assert abs(v0 - v1) < next_block - min(v0, v1)

    @given(slot_paths, slot_paths)
    def test_key_order_equals_path_order(self, p1, p2):
        k1 = encode_path_key(VOL, p1)
        k2 = encode_path_key(VOL, p2)
        # Pad with 0 (the reserved slot) to compare as the encoding does.
        pad1 = tuple(p1) + (0,) * (MAX_PATH_LEVELS - len(p1))
        pad2 = tuple(p2) + (0,) * (MAX_PATH_LEVELS - len(p2))
        if pad1 == pad2:
            assert k1 == k2
        else:
            assert (k1 < k2) == (pad1 < pad2)


class TestVolumeSeparation:
    def test_volumes_occupy_disjoint_arcs(self):
        lo1 = encode_path_key(VOL, [])
        hi1 = encode_path_key(VOL, [SLOT_SPACE - 1] * MAX_PATH_LEVELS,
                              block_number=2**64 - 1, version=2**32 - 1)
        other = encode_path_key(OTHER_VOL, [5])
        assert not (lo1 <= other <= hi1)


class TestOverflow:
    def test_deep_paths_encode(self):
        full = [1] * MAX_PATH_LEVELS
        key = encode_path_key(VOL, full, overflow_components=["a", "b"])
        assert decode_key(key).remainder != 0

    def test_overflow_distinguishes_names(self):
        full = [1] * MAX_PATH_LEVELS
        k1 = encode_path_key(VOL, full, overflow_components=["a"])
        k2 = encode_path_key(VOL, full, overflow_components=["b"])
        assert k1 != k2

    def test_no_overflow_means_zero_remainder(self):
        key = encode_path_key(VOL, [1, 2])
        assert decode_key(key).remainder == 0


class TestHashSlot:
    def test_never_reserved(self):
        for name in ("", "a", "index.html", "zzz"):
            assert hash_slot(name) >= FIRST_USABLE_SLOT

    def test_in_range(self):
        assert hash_slot("component") < SLOT_SPACE

    def test_deterministic(self):
        assert hash_slot("x") == hash_slot("x")


class TestChild:
    def test_child_extends_depth(self):
        parent = decode_key(encode_path_key(VOL, [1, 2]))
        child = parent.child(slot=5)
        assert child.depth == 3
        assert child.slots[2] == 5

    def test_child_of_full_path_rejected(self):
        parent = decode_key(encode_path_key(VOL, [1] * MAX_PATH_LEVELS))
        with pytest.raises(KeyEncodingError):
            parent.child(slot=5)

    def test_child_reserved_slot_rejected(self):
        parent = decode_key(encode_path_key(VOL, [1]))
        with pytest.raises(KeyEncodingError):
            parent.child(slot=0)


class TestVersionHash:
    def test_four_bytes(self):
        assert 0 <= version_hash(12345) < 2**32

    def test_distinct_versions_differ(self):
        assert version_hash(1) != version_hash(2)
