"""Tests for the latency model and access links."""

import random

import pytest

from repro.sim.network import AccessLinks, LatencyModel


class TestLatencyModel:
    def make(self, n=50, seed=0, mean_rtt=0.090):
        rng = random.Random(seed)
        names = [f"n{i}" for i in range(n)]
        return LatencyModel.random(names, rng, mean_rtt=mean_rtt)

    def test_self_rtt_zero(self):
        model = self.make()
        assert model.rtt("n0", "n0") == 0.0

    def test_symmetric(self):
        model = self.make()
        assert model.rtt("n1", "n2") == pytest.approx(model.rtt("n2", "n1"))

    def test_positive_floor(self):
        model = self.make()
        for i in range(1, 10):
            assert model.rtt("n0", f"n{i}") >= 0.005

    def test_mean_rtt_calibrated(self):
        model = self.make(n=200)
        sample = model.mean_rtt_sample(random.Random(1), samples=4000)
        assert 0.070 <= sample <= 0.110  # within ~20% of the 90 ms target

    def test_one_way_is_half(self):
        model = self.make()
        assert model.one_way("n1", "n2") == pytest.approx(model.rtt("n1", "n2") / 2)

    def test_path_latency_sums_legs(self):
        model = self.make()
        path = ["n0", "n1", "n2"]
        expected = model.one_way("n0", "n1") + model.one_way("n1", "n2")
        assert model.path_latency(path) == pytest.approx(expected)

    def test_path_latency_single_node_zero(self):
        model = self.make()
        assert model.path_latency(["n0"]) == 0.0

    def test_triangle_inequality(self):
        """Euclidean embedding: no latency shortcuts through a relay."""
        model = self.make(n=30)
        for a, b, c in (("n1", "n2", "n3"), ("n4", "n9", "n17")):
            direct = model.rtt(a, c)
            relayed = model.rtt(a, b) + model.rtt(b, c)
            assert direct <= relayed + model._base  # base offset tolerance

    def test_add_node(self):
        model = self.make(n=3)
        model.add_node("extra", random.Random(9))
        assert model.rtt("n0", "extra") > 0

    def test_empty_names_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel.random([], random.Random(0))


class TestAccessLinks:
    def test_upload_serializes(self):
        links = AccessLinks(rate_bytes_per_sec=1000.0)
        assert links.reserve_upload("n0", 0.0, 1000) == pytest.approx(1.0)
        assert links.reserve_upload("n0", 0.0, 1000) == pytest.approx(2.0)

    def test_links_independent(self):
        links = AccessLinks(rate_bytes_per_sec=1000.0)
        links.reserve_upload("n0", 0.0, 5000)
        assert links.reserve_upload("n1", 0.0, 1000) == pytest.approx(1.0)

    def test_bytes_uploaded(self):
        links = AccessLinks(rate_bytes_per_sec=1000.0)
        links.reserve_upload("n0", 0.0, 300)
        assert links.bytes_uploaded("n0") == 300
        assert links.bytes_uploaded("never-used") == 0

    def test_backlog(self):
        links = AccessLinks(rate_bytes_per_sec=1000.0)
        links.reserve_upload("n0", 0.0, 2000)
        assert links.backlog("n0", 1.0) == pytest.approx(1.0)

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            AccessLinks(0.0)


class TestMatrixModel:
    def test_lookup_and_symmetrization(self):
        model = LatencyModel.from_matrix(
            {("a", "b"): 0.100, ("b", "a"): 0.200, ("b", "c"): 0.050}
        )
        assert model.rtt("a", "b") == pytest.approx(0.150)
        assert model.rtt("b", "a") == pytest.approx(0.150)
        assert model.rtt("c", "b") == pytest.approx(0.050)

    def test_missing_pair_uses_mean(self):
        model = LatencyModel.from_matrix({("a", "b"): 0.1, ("b", "c"): 0.3})
        assert model.rtt("a", "c") == pytest.approx(0.2)

    def test_self_rtt_zero(self):
        model = LatencyModel.from_matrix({("a", "b"): 0.1})
        assert model.rtt("a", "a") == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel.from_matrix({})

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel.from_matrix({("a", "b"): -0.1})
