"""Tests for the Squirrel-style web-cache workload machinery."""

import random

import pytest

from repro.fs.blocks import BLOCK_SIZE
from repro.workloads.webcache import (
    EVICTION_AGE,
    WebCache,
    WebCacheKeyScheme,
    url_components,
)


class Store:
    """Minimal put/remove recorder."""

    def __init__(self):
        self.blocks = {}
        self.puts = 0
        self.removes = 0

    def put(self, key, size):
        self.blocks[key] = size
        self.puts += 1

    def remove(self, key):
        self.blocks.pop(key, None)
        self.removes += 1


def make_cache(system="d2", origin_change_interval=1e12):
    scheme = WebCacheKeyScheme(system)
    return WebCache(scheme, origin_change_interval=origin_change_interval,
                    rng=random.Random(0)), Store()


class TestKeyScheme:
    def test_url_components(self):
        assert url_components("/com.yahoo.www/a/b.html") == ["com.yahoo.www", "a", "b.html"]

    def test_d2_multi_block_objects_contiguous(self):
        scheme = WebCacheKeyScheme("d2")
        keys = [k for k, _ in scheme.block_keys("/com.x.www/big", 3 * BLOCK_SIZE, 0)]
        assert keys == sorted(keys)
        assert len(keys) == 3

    def test_d2_same_site_objects_cluster(self):
        scheme = WebCacheKeyScheme("d2")
        a = scheme.block_keys("/com.x.www/s1/a", 100, 0)[0][0]
        b = scheme.block_keys("/com.x.www/s1/b", 100, 0)[0][0]
        other = scheme.block_keys("/org.unrelated.www/s1/a", 100, 0)[0][0]
        assert abs(a - b) < abs(a - other)

    def test_traditional_blocks_scatter(self):
        scheme = WebCacheKeyScheme("traditional")
        keys = [k for k, _ in scheme.block_keys("/com.x.www/big", 3 * BLOCK_SIZE, 0)]
        assert keys != sorted(keys) or len(set(keys)) == 3

    def test_sizes_sum(self):
        scheme = WebCacheKeyScheme("d2")
        pairs = scheme.block_keys("/com.x.www/o", 2 * BLOCK_SIZE + 7, 0)
        assert sum(size for _, size in pairs) == 2 * BLOCK_SIZE + 7

    def test_version_changes_keys(self):
        scheme = WebCacheKeyScheme("d2")
        k0 = scheme.block_keys("/com.x.www/o", 100, 0)[0][0]
        k1 = scheme.block_keys("/com.x.www/o", 100, 1)[0][0]
        assert k0 != k1

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            WebCacheKeyScheme("chord")


class TestCacheStateMachine:
    def test_miss_then_hit(self):
        cache, store = make_cache()
        assert cache.request("/com.x.www/a", 100, 0.0, store.put, store.remove) is False
        assert cache.request("/com.x.www/a", 100, 1.0, store.put, store.remove) is True
        assert cache.stats.insertions == 1
        assert cache.stats.hits == 1

    def test_insert_puts_blocks(self):
        cache, store = make_cache()
        cache.request("/com.x.www/big", 2 * BLOCK_SIZE, 0.0, store.put, store.remove)
        assert store.puts == 2

    def test_origin_change_replaces(self):
        cache, store = make_cache(origin_change_interval=10.0)
        cache.request("/com.x.www/a", 100, 0.0, store.put, store.remove)
        # Far in the future the origin has certainly changed.
        hit = cache.request("/com.x.www/a", 100, 10_000.0, store.put, store.remove)
        assert hit is False
        assert cache.stats.replacements == 1
        assert store.removes >= 1

    def test_eviction_after_a_day(self):
        cache, store = make_cache()
        cache.request("/com.x.www/a", 100, 0.0, store.put, store.remove)
        evicted = cache.evict_stale(EVICTION_AGE + 1.0, store.remove)
        assert evicted == 1
        assert cache.cached_count == 0
        # The next request is a miss again.
        assert cache.request("/com.x.www/a", 100, EVICTION_AGE + 2.0,
                             store.put, store.remove) is False

    def test_refresh_postpones_eviction(self):
        cache, store = make_cache()
        cache.request("/com.x.www/a", 100, 0.0, store.put, store.remove)
        cache.request("/com.x.www/a", 100, EVICTION_AGE - 10.0, store.put, store.remove)
        assert cache.evict_stale(EVICTION_AGE + 1.0, store.remove) == 0

    def test_cached_bytes(self):
        cache, store = make_cache()
        cache.request("/com.x.www/a", 100, 0.0, store.put, store.remove)
        cache.request("/com.x.www/b", 200, 0.0, store.put, store.remove)
        assert cache.cached_bytes() == 300

    def test_hit_rate(self):
        cache, store = make_cache()
        for _ in range(4):
            cache.request("/com.x.www/a", 100, 0.0, store.put, store.remove)
        assert cache.stats.hit_rate == pytest.approx(0.75)
