"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.engine import SimulationError, Simulator, TokenBucket, kbps


class TestSimulatorBasics:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=42.0).now == 42.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append("late"))
        sim.schedule(1.0, lambda: fired.append("early"))
        sim.run()
        assert fired == ["early", "late"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.5]
        assert sim.now == 3.5

    def test_same_time_events_fire_fifo(self):
        sim = Simulator()
        fired = []
        for tag in ("a", "b", "c"):
            sim.schedule(1.0, lambda t=tag: fired.append(t))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_zero_delay_event_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.0, lambda: fired.append(True))
        sim.run()
        assert fired == [True]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator(start_time=10.0)
        seen = []
        sim.schedule_at(15.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [15.0]

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append(sim.now)
            sim.schedule(2.0, lambda: fired.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == [1.0, 3.0]


class TestRunUntil:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0

    def test_run_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run(until=100.0)
        assert sim.now == 100.0

    def test_continuing_run_fires_remaining_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        sim.run(until=20.0)
        assert fired == [1, 10]

    def test_event_exactly_at_until_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(True))
        sim.run(until=5.0)
        assert fired == [True]


class TestCancel:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(True))
        sim.cancel(handle)
        sim.run()
        assert fired == []

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(True))
        sim.run()
        sim.cancel(handle)
        assert fired == [True]

    def test_step_skips_cancelled(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.cancel(handle)
        assert sim.step() is True
        assert fired == ["b"]


class TestStep:
    def test_step_fires_one_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        assert sim.step() is True
        assert fired == [1]

    def test_step_on_empty_queue_returns_false(self):
        assert Simulator().step() is False


class TestPeriodicTask:
    def test_fires_repeatedly(self):
        sim = Simulator()
        fired = []
        sim.schedule_periodic(10.0, lambda: fired.append(sim.now))
        sim.run(until=35.0)
        assert fired == [10.0, 20.0, 30.0]

    def test_first_delay_override(self):
        sim = Simulator()
        fired = []
        sim.schedule_periodic(10.0, lambda: fired.append(sim.now), first_delay=1.0)
        sim.run(until=12.0)
        assert fired == [1.0, 11.0]

    def test_cancel_stops_future_firings(self):
        sim = Simulator()
        fired = []
        task = sim.schedule_periodic(10.0, lambda: fired.append(sim.now))
        sim.run(until=15.0)
        task.cancel()
        sim.run(until=100.0)
        assert fired == [10.0]

    def test_jitter_applied(self):
        sim = Simulator()
        fired = []
        sim.schedule_periodic(10.0, lambda: fired.append(sim.now), jitter=lambda: 1.0)
        sim.run(until=25.0)
        assert fired == [11.0, 22.0]

    def test_nonpositive_interval_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_periodic(0.0, lambda: None)


class TestTokenBucket:
    def test_reserve_duration(self):
        bucket = TokenBucket(rate_bytes_per_sec=100.0)
        assert bucket.reserve(0.0, 200) == pytest.approx(2.0)

    def test_back_to_back_reservations_queue(self):
        bucket = TokenBucket(rate_bytes_per_sec=100.0)
        bucket.reserve(0.0, 100)
        assert bucket.reserve(0.0, 100) == pytest.approx(2.0)

    def test_idle_bucket_starts_at_now(self):
        bucket = TokenBucket(rate_bytes_per_sec=100.0)
        bucket.reserve(0.0, 100)
        assert bucket.reserve(10.0, 100) == pytest.approx(11.0)

    def test_backlog_seconds(self):
        bucket = TokenBucket(rate_bytes_per_sec=100.0)
        bucket.reserve(0.0, 300)
        assert bucket.backlog_seconds(1.0) == pytest.approx(2.0)
        assert bucket.backlog_seconds(10.0) == 0.0

    def test_bytes_accounted(self):
        bucket = TokenBucket(rate_bytes_per_sec=100.0)
        bucket.reserve(0.0, 100)
        bucket.reserve(0.0, 50)
        assert bucket.bytes_sent == 150

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(100.0).reserve(0.0, -1)

    def test_kbps_conversion(self):
        assert kbps(1500) == pytest.approx(187500.0)
        assert kbps(750) == pytest.approx(93750.0)


class TestReentrancy:
    def test_run_is_not_reentrant(self):
        sim = Simulator()

        def reenter():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(1.0, reenter)
        sim.run()


class TestScheduleBatch:
    def test_equivalent_to_single_schedules(self):
        """A batch fires in the same order as one-by-one scheduling."""
        a, b = Simulator(), Simulator()
        fired_a, fired_b = [], []
        events = [(3.0, "x"), (1.0, "y"), (3.0, "z"), (0.0, "w")]
        for delay, tag in events:
            a.schedule(delay, lambda t=tag: fired_a.append((a.now, t)))
        b.schedule_batch(
            (delay, lambda t=tag: fired_b.append((b.now, t)))
            for delay, tag in events
        )
        a.run()
        b.run()
        assert fired_a == fired_b == [(0.0, "w"), (1.0, "y"), (3.0, "x"), (3.0, "z")]

    def test_large_batch_heapify_path(self):
        """Batches big enough to trigger the heapify fast path still pop
        in (time, seq) order."""
        sim = Simulator()
        sim.schedule(500.0, lambda: None)
        fired = []
        sim.schedule_batch(
            (float(999 - i), (lambda i=i: fired.append(i))) for i in range(1000)
        )
        sim.run()
        assert fired == list(reversed(range(1000)))

    def test_handles_are_cancellable(self):
        sim = Simulator()
        fired = []
        handles = sim.schedule_batch(
            [(1.0, lambda: fired.append("a")), (2.0, lambda: fired.append("b"))]
        )
        sim.cancel(handles[1])
        sim.run()
        assert fired == ["a"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_batch([(1.0, lambda: None), (-0.1, lambda: None)])

    def test_empty_batch(self):
        sim = Simulator()
        assert sim.schedule_batch([]) == []
        sim.run()

    def test_counts_fired_events(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        sim = Simulator(registry=registry)
        sim.schedule_batch([(float(i), lambda: None) for i in range(5)])
        sim.run()
        assert registry.counter("sim.events_fired").value == 5
