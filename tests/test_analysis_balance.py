"""Tests for the long-term load-balance experiments."""

import pytest

from repro.analysis.balance import run_harvard_balance, run_webcache_balance
from repro.workloads.harvard import HarvardConfig, generate_harvard
from repro.workloads.web import WebConfig, generate_web


@pytest.fixture(scope="module")
def harvard():
    return generate_harvard(HarvardConfig(users=4, days=1.0, seed=6))


@pytest.fixture(scope="module")
def web():
    return generate_web(WebConfig(users=8, days=1.0, sites=12, seed=6))


@pytest.fixture(scope="module")
def d2_result(harvard):
    return run_harvard_balance(harvard, "d2", n_nodes=16, seed=1)


class TestHarvardBalance:
    def test_samples_cover_duration(self, d2_result, harvard):
        assert d2_result.samples[0].time == 0.0
        assert d2_result.samples[-1].time >= harvard.duration - 6 * 3600.0

    def test_d2_beats_traditional_file(self, harvard, d2_result):
        trad_file = run_harvard_balance(harvard, "traditional-file", n_nodes=16, seed=1)
        assert d2_result.mean_nsd() < trad_file.mean_nsd()

    def test_unbalanced_systems_never_move(self, harvard):
        trad = run_harvard_balance(harvard, "traditional", n_nodes=16, seed=1)
        assert trad.moves == 0
        assert sum(trad.daily_migrated) == 0

    def test_d2_moves_and_migrates(self, d2_result):
        assert d2_result.moves > 0
        assert sum(d2_result.daily_migrated) > 0

    def test_churn_rows_shape(self, d2_result):
        rows = d2_result.churn_rows()
        assert len(rows) >= 1
        for row in rows:
            assert row["write_ratio"] >= 0

    def test_overhead_rows_per_node(self, d2_result):
        rows = d2_result.overhead_rows()
        total_w = sum(r["write_mb_per_node"] for r in rows)
        assert total_w == pytest.approx(
            sum(d2_result.daily_written) / 1e6 / d2_result.n_nodes
        )

    def test_migration_over_write_bounded(self, d2_result):
        """Pointers keep migration comparable to write volume (Table 4).

        At this very small scale (16 nodes, 1 day) removals also trigger
        rebalancing of old data, so the bound is loose; the Table-4 bench
        at full scale lands near the paper's ~0.5.
        """
        assert d2_result.migration_over_write() < 3.0


class TestWebcacheBalance:
    def test_d2_balances_webcache(self, web):
        d2 = run_webcache_balance(web, "d2", n_nodes=16, seed=1)
        trad = run_webcache_balance(web, "traditional", n_nodes=16, seed=1)
        assert d2.moves > 0
        assert trad.moves == 0
        assert d2.mean_nsd() < trad.mean_nsd()

    def test_high_churn_ratios(self, web):
        d2 = run_webcache_balance(web, "d2", n_nodes=16, seed=1)
        rows = d2.churn_rows()
        # The DHT starts empty: day-1 ratio is infinite or very large.
        assert rows[0]["write_ratio"] > 1.0

    def test_unknown_system_rejected(self, web):
        with pytest.raises(ValueError):
            run_webcache_balance(web, "traditional-file", n_nodes=8)
