"""Tests for the learned key-range -> node index (third lookup tier)."""

import random

import pytest

from repro.dht.consistent_hashing import random_node_ids
from repro.dht.keyspace import KEY_SPACE
from repro.dht.learned import LearnedIndex
from repro.dht.ring import Ring
from repro.dht.routing import route
from repro.obs.metrics import MetricsRegistry


def build_ring(n, seed=0):
    ring = Ring()
    rng = random.Random(seed)
    for i, node_id in enumerate(random_node_ids(n, rng)):
        ring.join(f"n{i}", node_id)
    return ring, rng


def train(index, ring, rng, count):
    for _ in range(count):
        key = rng.randrange(KEY_SPACE)
        index.observe(key, ring.successor_index(key))


class TestTraining:
    def test_untrained_until_min_observations(self):
        ring, rng = build_ring(50)
        index = LearnedIndex(ring, min_observations=64)
        index.refresh()
        train(index, ring, rng, 63)
        assert not index.trained
        train(index, ring, rng, 1)
        assert index.trained

    def test_untrained_predict_returns_none(self):
        ring, _ = build_ring(50)
        index = LearnedIndex(ring)
        assert index.predict(123) is None

    def test_reservoir_bounds_training_memory(self):
        ring, rng = build_ring(20)
        index = LearnedIndex(ring, segments=4, samples_per_segment=8)
        index.refresh()
        train(index, ring, rng, 1000)
        assert len(index._samples) <= index.sample_capacity == 32

    def test_retrain_fires_at_interval(self):
        ring, rng = build_ring(20)
        index = LearnedIndex(ring, min_observations=10, retrain_interval=100)
        index.refresh()
        train(index, ring, rng, 10 + 250)
        assert index.stats()["retrains"] == 3  # initial fit + 2 refits


class TestPrediction:
    def test_lookup_owner_always_correct(self):
        ring, rng = build_ring(100, seed=2)
        index = LearnedIndex(ring, seed=1)
        index.refresh()
        train(index, ring, rng, 1024)
        for _ in range(500):
            key = rng.randrange(KEY_SPACE)
            outcome = index.lookup("n0", key)
            assert outcome.result.owner == ring.successor(key)

    def test_trained_index_mostly_hits(self):
        ring, rng = build_ring(100, seed=2)
        index = LearnedIndex(ring, seed=1)
        index.refresh()
        train(index, ring, rng, 2048)
        hits = sum(
            1 for _ in range(500)
            if index.lookup("n0", rng.randrange(KEY_SPACE)).hit
        )
        assert hits > 400

    def test_clustered_locality_keys_resolve(self):
        """Regression: a D2-style arc — nodes and keys packed so densely
        that every key is the *same* float fraction of the 2^512 space —
        must still train; only domain-relative big-int features resolve
        it (absolute float features collapse to one point and mispredict
        everything)."""
        rng = random.Random(4)
        base = rng.randrange(KEY_SPACE // 2)
        step = 1 << 64  # far below float53 resolution of the keyspace
        ring = Ring()
        for i in range(32):
            ring.join(f"n{i}", base + i * 8 * step)
        keys = [base + rng.randrange(32 * 8) * step for _ in range(200)]
        assert len({key / KEY_SPACE for key in keys}) == 1  # float-collapsed
        index = LearnedIndex(ring, segments=16, seed=1)
        index.refresh()
        for _ in range(8):
            for key in keys:
                index.observe(key, ring.successor_index(key))
        assert index.trained
        hits = sum(1 for key in keys if index.lookup("n0", key).hit)
        distinct_owners = len({ring.successor(key) for key in keys})
        assert distinct_owners > 1  # the arc spans several nodes
        assert hits > len(keys) // 2

    def test_single_node_ring(self):
        ring = Ring()
        ring.join("only", 5)
        index = LearnedIndex(ring, min_observations=1)
        index.refresh()
        index.observe(3, 0)
        outcome = index.lookup("only", 900)
        assert outcome.result.owner == "only"


class TestFallback:
    def test_untrained_fallback_byte_identical_to_route(self):
        ring, rng = build_ring(100, seed=3)
        index = LearnedIndex(ring)
        for _ in range(20):
            key = rng.randrange(KEY_SPACE)
            outcome = index.lookup("n7", key)
            assert not outcome.hit
            assert outcome.predicted is None
            assert outcome.extra_messages == 0
            assert outcome.result == route(ring, "n7", key)

    def test_mispredict_bills_one_extra_message(self):
        ring, rng = build_ring(100, seed=3)
        index = LearnedIndex(ring, seed=1, max_probe=0)
        index.refresh()
        train(index, ring, rng, 1024)
        saw_mispredict = False
        for _ in range(500):
            key = rng.randrange(KEY_SPACE)
            outcome = index.lookup("n7", key)
            if outcome.hit or outcome.predicted is None:
                continue
            saw_mispredict = True
            assert outcome.extra_messages == 1
            reference = route(ring, "n7", key)
            assert outcome.result == reference
            assert outcome.messages == reference.messages + 1
        assert saw_mispredict

    def test_max_probe_bounds_hit_paths(self):
        ring, rng = build_ring(100, seed=3)
        index = LearnedIndex(ring, seed=1, max_probe=2)
        index.refresh()
        train(index, ring, rng, 2048)
        for _ in range(300):
            key = rng.randrange(KEY_SPACE)
            outcome = index.lookup("n0", key)
            if outcome.hit:
                # source -> predicted plus at most max_probe forwards.
                assert len(outcome.result.path) <= 2 + 2


class TestInvalidation:
    def test_ring_change_invalidates_model_and_samples(self):
        ring, rng = build_ring(50, seed=5)
        registry = MetricsRegistry()
        index = LearnedIndex(ring, registry=registry)
        index.refresh()
        train(index, ring, rng, 512)
        assert index.trained
        ring.join("late", 12345)
        assert not index.trained  # refresh() inside the property
        assert index.stats()["observations"] == 0
        assert registry.counter("dht.learned.invalidate").value == 1

    def test_post_churn_lookups_route_until_retrained(self):
        ring, rng = build_ring(50, seed=5)
        index = LearnedIndex(ring, min_observations=64)
        index.refresh()
        train(index, ring, rng, 512)
        ring.join("late", 12345)
        for _ in range(64):
            key = rng.randrange(KEY_SPACE)
            outcome = index.lookup("n0", key)
            assert not outcome.hit  # predict precedes the observation
            assert outcome.result == route(ring, "n0", key)
        assert index.trained  # the 64th observation refits

    def test_owner_correct_across_membership_change(self):
        ring, rng = build_ring(50, seed=5)
        index = LearnedIndex(ring)
        index.refresh()
        train(index, ring, rng, 512)
        ring.leave("n10")
        for _ in range(100):
            key = rng.randrange(KEY_SPACE)
            assert index.lookup("n0", key).result.owner == ring.successor(key)


class TestDeterminism:
    def test_identical_streams_train_identical_models(self):
        results = []
        for _ in range(2):
            ring, rng = build_ring(64, seed=6)
            index = LearnedIndex(ring, seed=9)
            index.refresh()
            train(index, ring, rng, 2048)
            probe_rng = random.Random(42)
            outcomes = [
                index.lookup("n1", probe_rng.randrange(KEY_SPACE))
                for _ in range(200)
            ]
            results.append((
                index._domain,
                index._model,
                [(o.hit, o.result.owner, o.messages) for o in outcomes],
            ))
        assert results[0] == results[1]


class TestValidation:
    def test_bad_parameters_rejected(self):
        ring, _ = build_ring(10)
        with pytest.raises(ValueError):
            LearnedIndex(ring, segments=0)
        with pytest.raises(ValueError):
            LearnedIndex(ring, samples_per_segment=0)
        with pytest.raises(ValueError):
            LearnedIndex(ring, max_probe=-1)

    def test_stats_shape(self):
        ring, rng = build_ring(10)
        index = LearnedIndex(ring)
        stats = index.stats()
        for field in ("trained", "observations", "segments", "segments_fit",
                      "hits", "mispredicts", "retrains", "invalidations"):
            assert field in stats
