"""Causal span tracing: Tracer lifecycle, trace CLI, end-to-end wiring."""

import json
import random

import pytest

from repro.analysis.performance import PerformanceHarness
from repro.core.system import build_deployment
from repro.obs.events import EventTracer
from repro.obs.spans import (
    NULL_SPAN,
    NullTracer,
    SAMPLE_ENV,
    Span,
    SpanError,
    Tracer,
    sample_rate_from_env,
    validate_span_dict,
)
from repro.obs.tracecli import (
    SpanRec,
    attribution,
    build_forest,
    complete_critical_paths,
    critical_chain,
    critical_path,
    critical_segments,
    main as trace_main,
    phase_of,
    render_flamegraph,
)
from repro.sim.network import LatencyModel


class TestSpanLifecycle:
    def test_finish_and_duration(self):
        span = Span("t1", "s1", None, "op", 10.0)
        assert not span.finished and span.duration == 0.0
        span.finish(12.5)
        assert span.finished and span.duration == 2.5

    def test_double_finish_rejected(self):
        span = Span("t1", "s1", None, "op", 0.0).finish(1.0)
        with pytest.raises(SpanError):
            span.finish(2.0)

    def test_end_before_start_rejected(self):
        with pytest.raises(SpanError):
            Span("t1", "s1", None, "op", 5.0).finish(4.0)

    def test_annotate_merges_attrs(self):
        span = Span("t1", "s1", None, "op", 0.0, a=1)
        span.annotate(b=2).annotate(a=3)
        assert span.attrs == {"a": 3, "b": 2}

    def test_to_dict_shape_is_schema_valid(self):
        span = Span("t1", "s1", None, "op", 0.0, node="n1").finish(1.0)
        assert validate_span_dict(span.to_dict()) == []


class TestTracer:
    def test_parent_child_share_trace_id(self):
        tracer = Tracer(sample=1.0)
        root = tracer.start_trace("fetch", 0.0)
        child = tracer.start_span("lookup", 0.0, root)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id

    def test_sampling_zero_yields_null_spans(self):
        tracer = Tracer(sample=0.0)
        root = tracer.start_trace("fetch", 0.0)
        assert root is NULL_SPAN and not root
        assert tracer.start_span("lookup", 0.0, root) is NULL_SPAN
        assert tracer.sampled_out == 1
        assert len(tracer) == 0

    def test_sampling_one_keeps_everything(self):
        tracer = Tracer(sample=1.0)
        for i in range(20):
            tracer.finish(tracer.start_trace("op", float(i)), float(i))
        assert tracer.sampled_out == 0
        assert tracer.counts() == {"op": 20}

    def test_sampling_is_deterministic_across_runs(self):
        def sampled(seed):
            tracer = Tracer(sample=0.5, seed=seed)
            return [bool(tracer.start_trace("op", float(i))) for i in range(50)]

        assert sampled(3) == sampled(3)
        assert sampled(3) != sampled(4)  # different seed, different picks

    def test_bounded_retention_keeps_exact_counts(self):
        tracer = Tracer(capacity=4, sample=1.0)
        for i in range(10):
            tracer.finish(tracer.start_trace("op", float(i)), float(i))
        assert len(tracer) == 4
        assert tracer.counts() == {"op": 10}
        assert tracer.dropped == 6

    def test_env_sample_rate_parsing(self, monkeypatch):
        monkeypatch.setenv(SAMPLE_ENV, "0.25")
        assert sample_rate_from_env() == 0.25
        monkeypatch.setenv(SAMPLE_ENV, "7")  # clamped
        assert sample_rate_from_env() == 1.0
        monkeypatch.setenv(SAMPLE_ENV, "junk")
        assert sample_rate_from_env() == 1.0
        monkeypatch.delenv(SAMPLE_ENV)
        assert sample_rate_from_env() == 1.0

    def test_from_env_zero_gives_null_tracer(self, monkeypatch):
        monkeypatch.setenv(SAMPLE_ENV, "0")
        tracer = Tracer.from_env()
        assert isinstance(tracer, NullTracer) and not tracer

    def test_context_manager_auto_closes_to_subtree_end(self):
        tracer = Tracer(sample=1.0)
        with tracer.span("fetch", 1.0) as root:
            child = tracer.start_span("transfer", 1.0, root)
            tracer.finish(child, 3.5)
        assert root.end == 3.5

    def test_context_manager_without_children_closes_at_start(self):
        tracer = Tracer(sample=1.0)
        with tracer.span("noop", 2.0) as root:
            pass
        assert root.end == 2.0

    def test_root_boundaries_mirrored_to_event_tracer(self):
        events = EventTracer()
        tracer = Tracer(sample=1.0, events=events)
        root = tracer.start_trace("fetch", 0.0)
        child = tracer.start_span("lookup", 0.0, root)
        tracer.finish(child, 1.0)
        tracer.finish(root, 1.0)
        counts = events.counts()
        assert counts.get("span.start") == 1  # roots only
        assert counts.get("span.finish") == 1

    def test_jsonl_export_round_trip(self, tmp_path):
        tracer = Tracer(sample=1.0)
        root = tracer.start_trace("fetch", 0.0, user="u1")
        tracer.finish(tracer.start_span("lookup", 0.0, root), 0.2)
        tracer.finish(root, 0.2)
        path = tracer.export_jsonl(str(tmp_path / "t.jsonl"))
        lines = [json.loads(l) for l in open(path, encoding="utf-8")]
        assert len(lines) == 2
        assert all(validate_span_dict(p) == [] for p in lines)

    def test_null_tracer_is_free_and_falsy(self):
        tracer = NullTracer()
        assert not tracer
        root = tracer.start_trace("fetch", 0.0)
        assert root is NULL_SPAN
        assert tracer.finish(root, 1.0) is NULL_SPAN
        assert tracer.to_dicts() == []


class TestTraceCli:
    def _make_trace(self):
        """fetch root tiled by lookup [0, .2] + transfer [.2, .5]."""
        tracer = Tracer(sample=1.0)
        root = tracer.start_trace("fetch", 0.0)
        tracer.finish(tracer.start_span("lookup", 0.0, root), 0.2)
        transfer = tracer.start_span("transfer", 0.2, root)
        tracer.finish(tracer.start_span("tcp.transfer", 0.25, transfer), 0.5)
        tracer.finish(transfer, 0.5)
        tracer.finish(root, 0.5)
        return tracer

    def _forest(self, tracer):
        return build_forest([SpanRec.from_dict(p) for p in tracer.to_dicts()])

    def test_tree_reconstruction(self):
        forest = self._forest(self._make_trace())
        assert len(forest.roots) == 1 and not forest.orphans
        root = forest.roots[0]
        assert [c.name for c in root.children] == ["lookup", "transfer"]

    def test_critical_path_and_segments(self):
        root = self._forest(self._make_trace()).roots[0]
        assert [s.name for s in critical_path(root)] == [
            "fetch", "lookup", "transfer", "tcp.transfer",
        ]
        covered = sum(hi - lo for _, lo, hi in critical_segments(root))
        assert covered == pytest.approx(root.duration)

    def test_root_duration_equals_sum_of_critical_children(self):
        root = self._forest(self._make_trace()).roots[0]
        chain = critical_chain(root)
        assert sum(c.duration for c in chain) == pytest.approx(root.duration)

    def test_attribution_buckets(self):
        forest = self._forest(self._make_trace())
        totals = attribution(forest.roots)
        assert totals["cache"] == pytest.approx(0.2)
        # transfer's own [0.2, 0.25] gap plus tcp.transfer [0.25, 0.5]
        assert totals["transfer"] == pytest.approx(0.3)
        assert totals["route"] == totals["queue"] == totals["other"] == 0.0

    def test_phase_mapping(self):
        assert phase_of("dht.hop") == "route"
        assert phase_of("lookup.stale_probe") == "cache"
        assert phase_of("net.request") == phase_of("tcp.transfer") == "transfer"
        assert phase_of("queue.wait") == "queue"
        assert phase_of("fs.apply_ops") == "other"

    def test_orphaned_span_promoted_to_root(self):
        rec = SpanRec("t1", "s2", "missing-parent", "lookup", 0.0, 1.0, {})
        forest = build_forest([rec])
        assert forest.roots == [rec] and forest.orphans == [rec]
        assert rec.orphaned

    def test_open_span_excluded_from_critical_path(self):
        recs = [
            SpanRec("t1", "s1", None, "fetch", 0.0, 1.0, {}),
            SpanRec("t1", "s2", "s1", "lookup", 0.0, None, {}),  # unclosed
        ]
        forest = build_forest(recs)
        assert forest.open_spans == [recs[1]]
        assert critical_path(forest.roots[0]) == [forest.roots[0]]
        assert complete_critical_paths(forest.roots) == 0

    def test_flamegraph_renders_positioned_bars(self):
        root = self._forest(self._make_trace()).roots[0]
        lines = render_flamegraph(root, width=40)
        assert "flamegraph" in lines[0]
        assert any("tcp.transfer" in l and "#" in l for l in lines)

    def test_cli_happy_path(self, tmp_path, capsys):
        path = self._make_trace().export_jsonl(str(tmp_path / "t.jsonl"))
        assert trace_main([path, "--require-complete"]) == 0
        out = capsys.readouterr().out
        assert "per-phase critical-path attribution" in out
        assert "slowest" in out and "flamegraph" in out
        assert "complete critical paths: 1" in out

    def test_cli_rejects_invalid_lines(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"span_id": "s1"}\n')
        assert trace_main([str(path)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_cli_require_complete_fails_on_leafless_roots(self, tmp_path, capsys):
        tracer = Tracer(sample=1.0)
        tracer.finish(tracer.start_trace("fetch", 0.0), 1.0)  # no children
        path = tracer.export_jsonl(str(tmp_path / "t.jsonl"))
        assert trace_main([path]) == 0
        assert trace_main([path, "--require-complete"]) == 1


class TestEndToEndWiring:
    """The acceptance criterion: one traced read produces a coherent tree."""

    def _traced_read(self):
        deployment = build_deployment("d2", 16, seed=1)
        # Force a real (non-env-dependent) tracer for this deployment.
        deployment.spans = Tracer(sample=1.0, events=deployment.tracer)
        deployment.store.spans = deployment.spans
        deployment.bootstrap_volume()
        deployment.apply_fs_ops(deployment.fs.makedirs("/home/u"))
        deployment.apply_fs_ops(deployment.fs.create("/home/u/f.dat", size=64_000))
        latency = LatencyModel.random(deployment.node_names, random.Random(7))
        harness = PerformanceHarness(
            deployment, latency, bandwidth_bps=187_500.0, rng=random.Random(13)
        )
        total = 0.0
        now = 100.0
        for i, (key, nbytes) in enumerate(deployment.read_fetches("/home/u/f.dat")):
            total += harness.fetch_latency("u", key, nbytes, f"b{i}", now + total)
        return deployment, total

    def test_fetch_root_duration_equals_critical_children(self):
        deployment, _ = self._traced_read()
        forest = build_forest(
            [SpanRec.from_dict(p) for p in deployment.spans.to_dicts()]
        )
        fetch_roots = [r for r in forest.roots if r.name == "fetch"]
        assert fetch_roots and not forest.open_spans
        for root in fetch_roots:
            chain = critical_chain(root)
            assert chain, "fetch root must have critical-path children"
            assert sum(c.duration for c in chain) == pytest.approx(root.duration)

    def test_route_hops_and_transfer_spans_present(self):
        deployment, _ = self._traced_read()
        counts = deployment.spans.counts()
        assert counts.get("dht.hop", 0) >= 1
        assert counts.get("dht.route", 0) >= 1
        assert counts["tcp.transfer"] == counts["transfer"]
        assert counts["lookup"] == counts["fetch"]

    def test_exported_trace_satisfies_cli(self, tmp_path, capsys):
        deployment, _ = self._traced_read()
        path = deployment.spans.export_jsonl(str(tmp_path / "run.jsonl"))
        assert trace_main([path, "--require-complete"]) == 0
        out = capsys.readouterr().out
        assert "flamegraph" in out

    def test_sampling_zero_deployment_emits_nothing(self, monkeypatch):
        monkeypatch.setenv(SAMPLE_ENV, "0")
        deployment = build_deployment("d2", 8, seed=2)
        assert isinstance(deployment.spans, NullTracer)
        deployment.bootstrap_volume()
        deployment.apply_fs_ops(deployment.fs.create("/f", size=10_000))
        assert deployment.spans.to_dicts() == []

    def test_balancer_move_produces_pointer_children(self):
        deployment = build_deployment("d2", 12, seed=3)
        deployment.spans = Tracer(sample=1.0)
        deployment.store.spans = deployment.spans
        deployment.balancer._spans = deployment.spans
        deployment.bootstrap_volume()
        for i in range(120):
            deployment.apply_fs_ops(
                deployment.fs.create(f"/f{i}.dat", size=16_000)
            )
        deployment.stabilize()
        counts = deployment.spans.counts()
        assert counts.get("balance.move", 0) >= 1
        assert counts.get("pointer.adopt", 0) >= 1
        moves = [s for s in deployment.spans.spans("balance.move")]
        adopts = deployment.spans.spans("pointer.adopt")
        move_ids = {m.span_id for m in moves}
        assert any(a.parent_id in move_ids for a in adopts)


class TestRunnerTraceAttachment:
    def test_report_lists_trace_files(self, tmp_path, monkeypatch):
        from repro.runner.cells import CELL_KINDS, cell_kind
        from repro.runner.executor import run_cells

        @cell_kind("trace-fake")
        def _fake(params):
            class Result:
                trace = [
                    Span("t1", "s1", None, "fetch", 0.0).finish(1.0).to_dict()
                ]
                metrics = None
            return Result()

        try:
            monkeypatch.delenv("REPRO_RUN_CACHE", raising=False)
            monkeypatch.setenv("REPRO_METRICS_DIR", str(tmp_path))
            run_cells(
                "trace-fake", [{"x": 1}, {"x": 2}], jobs=1,
                metrics_name="runner_trace_fake",
            )
            report = json.loads(
                (tmp_path / "runner_trace_fake.json").read_text()
            )
            traces = report["params"]["traces"]
            assert len(traces) == 2
            for name in traces:
                spans, problems = [], []
                for line in (tmp_path / name).read_text().splitlines():
                    payload = json.loads(line)
                    problems.extend(validate_span_dict(payload))
                assert problems == []
        finally:
            CELL_KINDS.pop("trace-fake", None)

    def test_worker_histograms_merge_into_report(self, tmp_path, monkeypatch):
        from repro.obs.metrics import Histogram
        from repro.runner.cells import CELL_KINDS, cell_kind
        from repro.runner.executor import run_cells

        @cell_kind("histo-fake")
        def _fake(params):
            histo = Histogram("fetch.latency_seconds")
            for v in range(params["lo"], params["hi"]):
                histo.observe(float(v))
            class Result:
                trace = None
                metrics = {
                    "histograms": {
                        histo.name: histo.snapshot(include_reservoir=True)
                    }
                }
            return Result()

        try:
            monkeypatch.delenv("REPRO_RUN_CACHE", raising=False)
            monkeypatch.setenv("REPRO_METRICS_DIR", str(tmp_path))
            run_cells(
                "histo-fake",
                [{"lo": 0, "hi": 100}, {"lo": 100, "hi": 200}],
                jobs=1,
                metrics_name="runner_histo_fake",
            )
            report = json.loads(
                (tmp_path / "runner_histo_fake.json").read_text()
            )
            merged = report["runs"][0]["histograms"]["fetch.latency_seconds"]
            assert merged["count"] == 200
            assert merged["min"] == 0.0 and merged["max"] == 199.0
            assert 80 <= merged["p50"] <= 120
        finally:
            CELL_KINDS.pop("histo-fake", None)


class TestWorkloadPhaseGrouping:
    """--phase: accel.lookup roots grouped by their workload-phase tag."""

    def _phased_tracer(self):
        tracer = Tracer(sample=1.0, seed=5)
        for index, phase in enumerate(
            ["pre", "pre", "shift", "post", "post", "post"]
        ):
            base = float(index)
            root = tracer.start_trace("accel.lookup", base, phase=phase)
            tracer.finish(
                tracer.start_span("route.hop", base, root), base + 0.2
            )
            tracer.finish(root, base + 0.5)
        # One untagged root lands in the "(none)" bucket.
        tracer.finish(tracer.start_trace("accel.lookup", 9.0), 9.1)
        return tracer

    def test_groups_and_order(self, tmp_path):
        from repro.obs.tracecli import (
            build_forest,
            load_spans,
            ordered_workload_phases,
            workload_phase_groups,
        )

        tracer = self._phased_tracer()
        path = tracer.export_jsonl(str(tmp_path / "phased.jsonl"))
        forest = build_forest(load_spans(path)[0])
        groups = workload_phase_groups(forest.roots)
        assert {k: len(v) for k, v in groups.items()} == {
            "pre": 2, "shift": 1, "post": 3, "(none)": 1,
        }
        assert ordered_workload_phases(groups) == [
            "pre", "shift", "post", "(none)",
        ]

    def test_extra_phases_sort_after_named_ones(self):
        from repro.obs.tracecli import ordered_workload_phases

        assert ordered_workload_phases(
            {"zeta": [], "post": [], "(none)": [], "alpha": [], "pre": []}
        ) == ["pre", "post", "alpha", "zeta", "(none)"]

    def test_cli_phase_flag_renders_section(self, tmp_path, capsys):
        tracer = self._phased_tracer()
        path = tracer.export_jsonl(str(tmp_path / "phased.jsonl"))
        assert trace_main([path, "--phase"]) == 0
        out = capsys.readouterr().out
        assert "per-workload-phase critical-path attribution" in out
        for tag in ("phase pre", "phase shift", "phase post", "phase (none)"):
            assert tag in out

    def test_accelerator_tags_spans_with_phase(self):
        from repro.core.accel import LookupAccelerator
        from repro.dht.keyspace import KEY_SPACE
        from repro.dht.ring import Ring

        ring = Ring()
        for i in range(8):
            ring.join(f"n{i}", (i + 1) * (KEY_SPACE // 9))
        tracer = Tracer(sample=1.0, seed=1)
        accel = LookupAccelerator(ring, mode="none", spans=tracer)
        accel.lookup("c0", "n0", KEY_SPACE // 3, now=1.0, phase="shift")
        accel.lookup("c0", "n0", KEY_SPACE // 2, now=2.0)
        roots = [s for s in tracer.spans() if s.name == "accel.lookup"]
        assert [s.attrs.get("phase") for s in roots] == ["shift", None]
