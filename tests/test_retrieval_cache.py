"""Tests for the retrieval-cache (request-load) layer."""

import random

import pytest

from repro.dht.consistent_hashing import random_node_ids
from repro.dht.ring import Ring
from repro.store.retrieval_cache import RetrievalCacheLayer, replica_only_service


@pytest.fixture
def ring():
    ring = Ring()
    rng = random.Random(2)
    for i, node_id in enumerate(random_node_ids(12, rng)):
        ring.join(f"n{i}", node_id)
    return ring


def layer_for(ring, **kwargs):
    kwargs.setdefault("rng", random.Random(0))
    return RetrievalCacheLayer(ring, **kwargs)


class TestServing:
    def test_first_request_hits_replica(self, ring):
        layer = layer_for(ring)
        server = layer.serve(42, "n0", now=0.0)
        assert server in ring.successors(42, 3)
        assert layer.stats.served_by_replica == 1

    def test_second_request_can_hit_cache(self, ring):
        layer = layer_for(ring)
        layer.serve(42, "n5", now=0.0)
        server = layer.serve(42, "n7", now=1.0)
        # The only fresh holder is the first client's gateway.
        assert server == "n5"
        assert layer.stats.served_by_cache == 1

    def test_cache_entry_expires(self, ring):
        layer = layer_for(ring, cache_ttl=10.0)
        layer.serve(42, "n5", now=0.0)
        server = layer.serve(42, "n7", now=100.0)
        assert server in ring.successors(42, 3)
        assert layer.stats.expirations == 1

    def test_holders_accumulate_with_popularity(self, ring):
        layer = layer_for(ring, cache_ttl=1e9)
        for i, client in enumerate(["n1", "n2", "n3", "n4"]):
            layer.serve(42, client, now=float(i))
        assert len(layer._fresh_holders(42, now=10.0)) == 4

    def test_capacity_bound_respected(self, ring):
        layer = layer_for(ring, max_cached_blocks=2, cache_ttl=1e9)
        for key in (1, 2, 3, 4):
            layer._insert(key, "n0", now=0.0)
        assert layer._node_blocks["n0"] == 2


class TestHotSpotFlattening:
    def test_caches_spread_hot_key(self, ring):
        rng = random.Random(3)
        requests = [(42, f"n{rng.randrange(12)}") for _ in range(2000)]
        layer = layer_for(ring, cache_ttl=1e9)
        for i, (key, client) in enumerate(requests):
            layer.serve(key, client, now=float(i))
        baseline = replica_only_service(ring, requests, rng=random.Random(3))
        base_counts = list(baseline.values())
        base_factor = max(base_counts) / (sum(base_counts) / len(base_counts))
        assert layer.hot_spot_factor() < base_factor

    def test_served_counts_cover_all_nodes(self, ring):
        layer = layer_for(ring)
        layer.serve(42, "n0", now=0.0)
        counts = layer.served_counts()
        assert set(counts) == set(ring.names())
        assert sum(counts.values()) == 1

    def test_replica_only_service_counts(self, ring):
        served = replica_only_service(ring, [(42, "n0")] * 10)
        assert sum(served.values()) == 10
        group = set(ring.successors(42, 3))
        assert all(count == 0 for node, count in served.items() if node not in group)
