"""Tests for the range-based lookup cache."""

import pytest

from repro.core.lookup_cache import AdaptiveSizer, CacheBudget, LookupCache
from repro.dht.keyspace import MAX_KEY


class TestProbeInsert:
    def test_empty_cache_misses(self):
        cache = LookupCache(ttl=100.0)
        assert cache.probe(50, now=0.0) is None
        assert cache.stats.misses == 1

    def test_hit_within_range(self):
        cache = LookupCache(ttl=100.0)
        cache.insert(10, 20, "n1", now=0.0)
        assert cache.probe(15, now=1.0) == "n1"
        assert cache.probe(20, now=1.0) == "n1"  # hi inclusive
        assert cache.stats.hits == 2

    def test_lo_exclusive(self):
        cache = LookupCache(ttl=100.0)
        cache.insert(10, 20, "n1", now=0.0)
        assert cache.probe(10, now=1.0) is None

    def test_miss_outside_range(self):
        cache = LookupCache(ttl=100.0)
        cache.insert(10, 20, "n1", now=0.0)
        assert cache.probe(25, now=1.0) is None

    def test_multiple_ranges(self):
        cache = LookupCache(ttl=100.0)
        cache.insert(10, 20, "n1", now=0.0)
        cache.insert(30, 40, "n2", now=0.0)
        assert cache.probe(35, now=1.0) == "n2"
        assert cache.probe(15, now=1.0) == "n1"

    def test_wrapping_range(self):
        cache = LookupCache(ttl=100.0)
        cache.insert(MAX_KEY - 10, 5, "wrap", now=0.0)
        assert cache.probe(MAX_KEY, now=1.0) == "wrap"
        assert cache.probe(3, now=1.0) == "wrap"
        assert cache.probe(50, now=1.0) is None

    def test_same_range_end_replaced(self):
        cache = LookupCache(ttl=100.0)
        cache.insert(10, 20, "old", now=0.0)
        cache.insert(12, 20, "new", now=1.0)
        assert cache.probe(15, now=2.0) == "new"
        assert len(cache) == 1


class TestTTL:
    def test_expired_entry_misses(self):
        cache = LookupCache(ttl=100.0)
        cache.insert(10, 20, "n1", now=0.0)
        assert cache.probe(15, now=101.0) is None

    def test_entry_valid_just_before_ttl(self):
        cache = LookupCache(ttl=100.0)
        cache.insert(10, 20, "n1", now=0.0)
        assert cache.probe(15, now=99.9) == "n1"

    def test_expired_entries_evicted_on_insert(self):
        cache = LookupCache(ttl=100.0)
        cache.insert(10, 20, "n1", now=0.0)
        cache.insert(30, 40, "n2", now=200.0)
        assert len(cache) == 1
        assert cache.stats.evictions == 1


class TestInvalidate:
    def test_invalidate_drops_entry(self):
        cache = LookupCache(ttl=100.0)
        cache.insert(10, 20, "n1", now=0.0)
        cache.invalidate(15)
        assert cache.probe(15, now=1.0) is None
        assert cache.stats.stale_hits == 1

    def test_invalidate_missing_noop(self):
        cache = LookupCache(ttl=100.0)
        cache.invalidate(15)
        assert cache.stats.stale_hits == 0


class TestStats:
    def test_miss_rate(self):
        cache = LookupCache(ttl=100.0)
        cache.insert(10, 20, "n1", now=0.0)
        cache.probe(15, now=1.0)
        cache.probe(50, now=1.0)
        assert cache.stats.miss_rate == pytest.approx(0.5)
        assert cache.stats.hit_rate == pytest.approx(0.5)
        assert cache.stats.lookups == 2

    def test_empty_stats(self):
        cache = LookupCache()
        assert cache.stats.miss_rate == 0.0
        assert cache.stats.hit_rate == 0.0


class TestStalenessAndOverlapRegressions:
    """Regressions for the lazily-dropped / overlap-shadowing bugs.

    These fail on the pre-fix cache, which (a) kept expired entries in the
    table after returning them as misses and (b) only examined the bisect
    candidate and index 0, so a covering entry elsewhere was invisible and
    the documented freshest-entry-wins rule was unimplemented.
    """

    def test_expired_entry_dropped_on_probe(self):
        cache = LookupCache(ttl=100.0)
        cache.insert(10, 20, "n1", now=0.0)
        assert cache.probe(15, now=150.0) is None
        assert len(cache) == 0  # dropped, not merely skipped
        assert cache.stats.evictions == 1

    def test_expired_entry_does_not_mask_live_overlap(self):
        cache = LookupCache(ttl=100.0)
        cache.insert(10, 30, "old", now=0.0)   # expires at 100
        cache.insert(5, 40, "new", now=50.0)   # fresher, overlapping arc
        # At t=120 "old" has expired but "new" still covers key 20; the
        # expired entry must not shadow it into a permanent miss.
        assert cache.probe(20, now=120.0) == "new"

    def test_freshest_entry_wins_on_transient_overlap(self):
        cache = LookupCache(ttl=100.0)
        cache.insert(10, 30, "a", now=0.0)
        cache.insert(5, 40, "b", now=10.0)  # learned later => fresher
        assert cache.probe(20, now=50.0) == "b"

    def test_covering_entry_found_at_any_index(self):
        # A wrapping arc whose range end bisects *before* other entries:
        # the old two-candidate probe never looked at it.
        cache = LookupCache(ttl=100.0)
        cache.insert(1, 2, "tiny", now=0.0)
        cache.insert(MAX_KEY - 10, 5, "wrap", now=0.0)
        assert cache.probe(MAX_KEY - 5, now=1.0) == "wrap"

    def test_stale_probe_then_reinsert_recovers(self):
        cache = LookupCache(ttl=100.0)
        cache.insert(10, 30, "old", now=0.0)
        assert cache.probe(20, now=150.0) is None  # expired => dropped
        cache.insert(10, 30, "new", now=150.0)
        assert cache.probe(20, now=151.0) == "new"
        assert len(cache) == 1


class TestLocalityAdvantage:
    def test_clustered_keys_hit_after_one_lookup(self):
        """The D2 effect: one cached range serves a whole directory."""
        cache = LookupCache(ttl=1e9)
        cache.insert(1000, 2000, "server", now=0.0)
        hits = sum(1 for key in range(1001, 1101) if cache.probe(key, 0.0))
        assert hits == 100

    def test_scattered_keys_keep_missing(self):
        """The traditional effect: hashed keys rarely reuse a range."""
        import random

        from repro.dht.keyspace import KEY_SPACE

        rng = random.Random(1)
        cache = LookupCache(ttl=1e9)
        width = KEY_SPACE // 1000  # 1000-node ring, one range cached
        cache.insert(0, width, "server", now=0.0)
        probes = [rng.randrange(KEY_SPACE) for _ in range(200)]
        hits = sum(1 for key in probes if cache.probe(key, 0.0) is not None)
        assert hits <= 3


class TestBoundedCapacity:
    def test_insert_over_capacity_evicts_nearest_expiry(self):
        cache = LookupCache(ttl=100.0, capacity=2)
        cache.insert(10, 20, "a", now=0.0)   # expires 100
        cache.insert(30, 40, "b", now=5.0)   # expires 105
        cache.insert(50, 60, "c", now=6.0)   # full: "a" is closest to expiry
        assert len(cache) == 2
        assert cache.probe(15, now=7.0) is None
        assert cache.probe(35, now=7.0) == "b"
        assert cache.probe(55, now=7.0) == "c"
        assert cache.stats.capacity_evictions == 1

    def test_eviction_tie_broken_by_range_end(self):
        cache = LookupCache(ttl=100.0, capacity=2)
        cache.insert(30, 40, "b", now=0.0)
        cache.insert(10, 20, "a", now=0.0)  # same expiry, lower hi
        cache.insert(50, 60, "c", now=1.0)
        assert cache.probe(15, now=2.0) is None  # "a" went first
        assert cache.probe(35, now=2.0) == "b"

    def test_same_range_end_replacement_never_evicts(self):
        cache = LookupCache(ttl=100.0, capacity=1)
        cache.insert(10, 20, "old", now=0.0)
        cache.insert(12, 20, "new", now=1.0)
        assert len(cache) == 1
        assert cache.stats.capacity_evictions == 0

    def test_unbounded_default_unchanged(self):
        cache = LookupCache(ttl=100.0)
        for i in range(100):
            cache.insert(i * 10, i * 10 + 5, f"n{i}", now=0.0)
        assert len(cache) == 100
        assert cache.stats.capacity_evictions == 0


class TestMembershipEpochChecks:
    """Satellite regression: entries must not outlive their node's crash."""

    def _ring(self):
        from repro.dht.ring import Ring

        ring = Ring()
        ring.join("a", 100)
        ring.join("b", 200)
        ring.join("c", 300)
        return ring

    def test_probe_evicts_entry_for_departed_node(self):
        ring = self._ring()
        cache = LookupCache(ttl=1e9, ring=ring)
        lo, hi = ring.range_of("b")
        cache.insert(lo, hi, "b", now=0.0)
        ring.leave("b")
        assert cache.probe(hi, now=1.0) is None
        assert cache.stats.membership_evictions == 1
        assert len(cache) == 0

    def test_position_change_keeps_entry_alive(self):
        ring = self._ring()
        cache = LookupCache(ttl=1e9, ring=ring)
        lo, hi = ring.range_of("b")
        cache.insert(lo, hi, "b", now=0.0)
        ring.change_position("c", 350)  # version bump, "b" still a member
        assert cache.probe(hi, now=1.0) == "b"
        assert cache.stats.membership_evictions == 0

    def test_version_refreshed_after_surviving_check(self):
        ring = self._ring()
        cache = LookupCache(ttl=1e9, ring=ring)
        lo, hi = ring.range_of("b")
        cache.insert(lo, hi, "b", now=0.0)
        ring.change_position("c", 350)
        cache.probe(hi, now=1.0)
        (entry,) = cache.entries()
        assert entry.version == ring.version

    def test_crash_mid_replay_regression(self):
        """The PR-6 interaction: a dynamic-membership crash mid-replay must
        not leave clients probing into the dead node."""
        from repro.core.system import build_deployment

        deployment = build_deployment("d2", 8, seed=3)
        deployment.bootstrap_volume()
        deployment.stabilize()
        deployment.enable_dynamic_membership(min_nodes=2)
        cache = deployment.lookup_cache_for("client")
        victim = deployment.node_names[0]
        lo, hi = deployment.ring.range_of(victim)
        cache.insert(lo, hi, victim, now=deployment.sim.now)
        assert cache.probe(hi, now=deployment.sim.now) == victim
        assert deployment.membership.crash(victim)
        assert cache.probe(hi, now=deployment.sim.now) != victim
        assert cache.stats.membership_evictions == 1


class TestCacheBudget:
    def test_grants_bounded_by_remaining(self):
        budget = CacheBudget(10)
        assert budget.request(6) == 6
        assert budget.request(6) == 4  # only 4 left
        assert budget.request(1) == 0
        assert budget.remaining == 0

    def test_release_returns_entries(self):
        budget = CacheBudget(10)
        budget.request(10)
        budget.release(3)
        assert budget.remaining == 3
        budget.release(100)  # over-release clamps at zero granted
        assert budget.granted == 0

    def test_zero_budget_rejected(self):
        with pytest.raises(ValueError):
            CacheBudget(0)


class TestAdaptiveSizer:
    def _thrash(self, cache, sizer, probes):
        """Interleave misses and capacity evictions for one window."""
        for i in range(probes):
            cache.probe(10_000_000 + i, now=0.0)  # all misses
            sizer.record(cache, "capacity_eviction")

    def test_attach_grants_initial_capacity(self):
        budget = CacheBudget(100)
        sizer = AdaptiveSizer(min_capacity=8, budget=budget)
        cache = LookupCache(ttl=100.0)
        cache.attach_sizer(sizer)
        assert cache.capacity == 8
        assert budget.granted == 8

    def test_thrash_doubles_capacity(self):
        sizer = AdaptiveSizer(window=16, min_capacity=4)
        cache = LookupCache(ttl=100.0, sizer=sizer)
        self._thrash(cache, sizer, 16)
        assert cache.capacity == 8
        assert sizer.adaptations["grow"] == 1

    def test_growth_clipped_by_budget(self):
        budget = CacheBudget(6)
        sizer = AdaptiveSizer(window=16, min_capacity=4, budget=budget)
        cache = LookupCache(ttl=100.0, sizer=sizer)
        self._thrash(cache, sizer, 16)
        assert cache.capacity == 6  # wanted 8, budget only had 2 more
        assert budget.remaining == 0

    def test_staleness_halves_ttl(self):
        sizer = AdaptiveSizer(window=16, stale_tolerance=0.02, min_ttl=10.0)
        cache = LookupCache(ttl=100.0, sizer=sizer)
        for i in range(16):
            cache.insert(i * 10, i * 10 + 5, "n", now=0.0)
            cache.probe(i * 10 + 3, now=0.0)
            if i < 4:
                cache.invalidate(i * 10 + 3)  # 25% stale rate
        assert cache.ttl == 50.0
        assert sizer.adaptations["ttl_down"] == 1

    def test_healthy_window_stretches_ttl_and_shrinks(self):
        sizer = AdaptiveSizer(window=16, min_capacity=4, target_hit_rate=0.5)
        cache = LookupCache(ttl=100.0, sizer=sizer)
        cache.capacity = 64
        cache.insert(10, 20, "n", now=0.0)
        for _ in range(16):
            cache.probe(15, now=0.0)  # pure hits, occupancy 1 <= 64//4
        assert cache.ttl == 150.0
        assert cache.capacity == 32  # one bounded halving per window
        assert sizer.adaptations["ttl_up"] == 1
        assert sizer.adaptations["shrink"] == 1

    def test_shrink_releases_budget(self):
        budget = CacheBudget(100)
        sizer = AdaptiveSizer(window=16, min_capacity=4, budget=budget,
                              target_hit_rate=0.5)
        cache = LookupCache(ttl=100.0, sizer=sizer)  # attach grants 4
        cache.capacity = 64
        budget.request(60)  # pretend the rest was granted too
        cache.insert(10, 20, "n", now=0.0)
        for _ in range(16):
            cache.probe(15, now=0.0)
        assert cache.capacity == 32
        assert budget.granted == 64 - 32  # the halving was released

    def test_ttl_respects_floor_and_cap(self):
        sizer = AdaptiveSizer(window=4, min_ttl=80.0, max_ttl=120.0,
                              target_hit_rate=0.5)
        cache = LookupCache(ttl=100.0, sizer=sizer)
        for i in range(4):
            cache.insert(i * 10, i * 10 + 5, "n", now=0.0)
            cache.probe(i * 10 + 3, now=0.0)
            cache.invalidate(i * 10 + 3)
        assert cache.ttl == 80.0  # halving clamped at the floor
        cache2 = LookupCache(ttl=100.0,
                             sizer=AdaptiveSizer(window=4, max_ttl=120.0,
                                                 target_hit_rate=0.5))
        cache2.insert(10, 20, "n", now=0.0)
        for _ in range(4):
            cache2.probe(15, now=0.0)
        assert cache2.ttl == 120.0  # stretch clamped at the cap

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveSizer(window=0)
        with pytest.raises(ValueError):
            AdaptiveSizer(min_capacity=0)
        with pytest.raises(ValueError):
            AdaptiveSizer(min_capacity=10, max_capacity=5)
