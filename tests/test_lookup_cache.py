"""Tests for the range-based lookup cache."""

import pytest

from repro.core.lookup_cache import LookupCache
from repro.dht.keyspace import MAX_KEY


class TestProbeInsert:
    def test_empty_cache_misses(self):
        cache = LookupCache(ttl=100.0)
        assert cache.probe(50, now=0.0) is None
        assert cache.stats.misses == 1

    def test_hit_within_range(self):
        cache = LookupCache(ttl=100.0)
        cache.insert(10, 20, "n1", now=0.0)
        assert cache.probe(15, now=1.0) == "n1"
        assert cache.probe(20, now=1.0) == "n1"  # hi inclusive
        assert cache.stats.hits == 2

    def test_lo_exclusive(self):
        cache = LookupCache(ttl=100.0)
        cache.insert(10, 20, "n1", now=0.0)
        assert cache.probe(10, now=1.0) is None

    def test_miss_outside_range(self):
        cache = LookupCache(ttl=100.0)
        cache.insert(10, 20, "n1", now=0.0)
        assert cache.probe(25, now=1.0) is None

    def test_multiple_ranges(self):
        cache = LookupCache(ttl=100.0)
        cache.insert(10, 20, "n1", now=0.0)
        cache.insert(30, 40, "n2", now=0.0)
        assert cache.probe(35, now=1.0) == "n2"
        assert cache.probe(15, now=1.0) == "n1"

    def test_wrapping_range(self):
        cache = LookupCache(ttl=100.0)
        cache.insert(MAX_KEY - 10, 5, "wrap", now=0.0)
        assert cache.probe(MAX_KEY, now=1.0) == "wrap"
        assert cache.probe(3, now=1.0) == "wrap"
        assert cache.probe(50, now=1.0) is None

    def test_same_range_end_replaced(self):
        cache = LookupCache(ttl=100.0)
        cache.insert(10, 20, "old", now=0.0)
        cache.insert(12, 20, "new", now=1.0)
        assert cache.probe(15, now=2.0) == "new"
        assert len(cache) == 1


class TestTTL:
    def test_expired_entry_misses(self):
        cache = LookupCache(ttl=100.0)
        cache.insert(10, 20, "n1", now=0.0)
        assert cache.probe(15, now=101.0) is None

    def test_entry_valid_just_before_ttl(self):
        cache = LookupCache(ttl=100.0)
        cache.insert(10, 20, "n1", now=0.0)
        assert cache.probe(15, now=99.9) == "n1"

    def test_expired_entries_evicted_on_insert(self):
        cache = LookupCache(ttl=100.0)
        cache.insert(10, 20, "n1", now=0.0)
        cache.insert(30, 40, "n2", now=200.0)
        assert len(cache) == 1
        assert cache.stats.evictions == 1


class TestInvalidate:
    def test_invalidate_drops_entry(self):
        cache = LookupCache(ttl=100.0)
        cache.insert(10, 20, "n1", now=0.0)
        cache.invalidate(15)
        assert cache.probe(15, now=1.0) is None
        assert cache.stats.stale_hits == 1

    def test_invalidate_missing_noop(self):
        cache = LookupCache(ttl=100.0)
        cache.invalidate(15)
        assert cache.stats.stale_hits == 0


class TestStats:
    def test_miss_rate(self):
        cache = LookupCache(ttl=100.0)
        cache.insert(10, 20, "n1", now=0.0)
        cache.probe(15, now=1.0)
        cache.probe(50, now=1.0)
        assert cache.stats.miss_rate == pytest.approx(0.5)
        assert cache.stats.hit_rate == pytest.approx(0.5)
        assert cache.stats.lookups == 2

    def test_empty_stats(self):
        cache = LookupCache()
        assert cache.stats.miss_rate == 0.0
        assert cache.stats.hit_rate == 0.0


class TestStalenessAndOverlapRegressions:
    """Regressions for the lazily-dropped / overlap-shadowing bugs.

    These fail on the pre-fix cache, which (a) kept expired entries in the
    table after returning them as misses and (b) only examined the bisect
    candidate and index 0, so a covering entry elsewhere was invisible and
    the documented freshest-entry-wins rule was unimplemented.
    """

    def test_expired_entry_dropped_on_probe(self):
        cache = LookupCache(ttl=100.0)
        cache.insert(10, 20, "n1", now=0.0)
        assert cache.probe(15, now=150.0) is None
        assert len(cache) == 0  # dropped, not merely skipped
        assert cache.stats.evictions == 1

    def test_expired_entry_does_not_mask_live_overlap(self):
        cache = LookupCache(ttl=100.0)
        cache.insert(10, 30, "old", now=0.0)   # expires at 100
        cache.insert(5, 40, "new", now=50.0)   # fresher, overlapping arc
        # At t=120 "old" has expired but "new" still covers key 20; the
        # expired entry must not shadow it into a permanent miss.
        assert cache.probe(20, now=120.0) == "new"

    def test_freshest_entry_wins_on_transient_overlap(self):
        cache = LookupCache(ttl=100.0)
        cache.insert(10, 30, "a", now=0.0)
        cache.insert(5, 40, "b", now=10.0)  # learned later => fresher
        assert cache.probe(20, now=50.0) == "b"

    def test_covering_entry_found_at_any_index(self):
        # A wrapping arc whose range end bisects *before* other entries:
        # the old two-candidate probe never looked at it.
        cache = LookupCache(ttl=100.0)
        cache.insert(1, 2, "tiny", now=0.0)
        cache.insert(MAX_KEY - 10, 5, "wrap", now=0.0)
        assert cache.probe(MAX_KEY - 5, now=1.0) == "wrap"

    def test_stale_probe_then_reinsert_recovers(self):
        cache = LookupCache(ttl=100.0)
        cache.insert(10, 30, "old", now=0.0)
        assert cache.probe(20, now=150.0) is None  # expired => dropped
        cache.insert(10, 30, "new", now=150.0)
        assert cache.probe(20, now=151.0) == "new"
        assert len(cache) == 1


class TestLocalityAdvantage:
    def test_clustered_keys_hit_after_one_lookup(self):
        """The D2 effect: one cached range serves a whole directory."""
        cache = LookupCache(ttl=1e9)
        cache.insert(1000, 2000, "server", now=0.0)
        hits = sum(1 for key in range(1001, 1101) if cache.probe(key, 0.0))
        assert hits == 100

    def test_scattered_keys_keep_missing(self):
        """The traditional effect: hashed keys rarely reuse a range."""
        import random

        from repro.dht.keyspace import KEY_SPACE

        rng = random.Random(1)
        cache = LookupCache(ttl=1e9)
        width = KEY_SPACE // 1000  # 1000-node ring, one range cached
        cache.insert(0, width, "server", now=0.0)
        probes = [rng.randrange(KEY_SPACE) for _ in range(200)]
        hits = sum(1 for key in probes if cache.probe(key, 0.0) is not None)
        assert hits <= 3
