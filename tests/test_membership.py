"""Tests for the churn subsystem: join/leave/crash protocols and repair."""

import random

import pytest

from repro.dht.keyspace import KEY_SPACE
from repro.dht.membership import MembershipService
from repro.dht.ring import Ring
from repro.sim.engine import Simulator
from repro.sim.failures import (
    ChurnStormConfig,
    FailureEvent,
    FailureTrace,
    generate_churn_ops,
)
from repro.store.migration import StorageCoordinator
from repro.store.repair import RepairScheduler


def key_at(thousandth):
    return thousandth * (KEY_SPACE // 1000)


def make_cluster(
    n=6,
    *,
    replica_count=3,
    stabilization=60.0,
    bandwidth=1_000_000.0,
    min_nodes=None,
    seed=7,
):
    ring = Ring()
    for i in range(n):
        ring.join(f"n{i}", (i + 1) * (KEY_SPACE // (n + 1)))
    sim = Simulator()
    store = StorageCoordinator(
        ring,
        sim,
        pointer_stabilization_time=stabilization,
        replica_count=replica_count,
    )
    repair = RepairScheduler(store, sim, bandwidth_bps=bandwidth)
    membership = MembershipService(
        ring, store, sim, repair, rng=random.Random(seed), min_nodes=min_nodes
    )
    return ring, sim, store, repair, membership


def group_fully_held(ring, repair, key, replicas=3):
    group = ring.successors(key, replicas)
    return set(group) <= set(repair.tracker.holders_of(key))


class TestJoin:
    def test_join_adopts_arc_and_replicates(self):
        ring, sim, store, repair, membership = make_cluster()
        keys = [key_at(t) for t in range(10, 400, 10)]
        for key in keys:
            store.write(key, 1000)
        position = membership.join("newbie")
        assert position is not None
        assert "newbie" in ring
        sim.run(until=7200.0)
        for key in keys:
            assert store.physical_holder(key) == ring.successor(key)
            assert group_fully_held(ring, repair, key)
        assert repair.stats.lost_keys == 0

    def test_duplicate_join_refused(self):
        ring, sim, store, repair, membership = make_cluster()
        assert membership.join("n0") is None
        assert membership.metrics.counter("membership.refused").value == 1

    def test_explicit_position_honored(self):
        ring, sim, store, repair, membership = make_cluster()
        desired = key_at(42)
        position = membership.join("pinned", position=desired)
        assert position == desired


class TestGracefulLeave:
    def test_leave_loses_nothing(self):
        ring, sim, store, repair, membership = make_cluster()
        keys = [key_at(t) for t in range(10, 400, 10)]
        for key in keys:
            store.write(key, 1000)
        assert membership.leave("n2")
        assert "n2" not in ring
        sim.run(until=7200.0)
        assert repair.stats.lost_keys == 0
        for key in keys:
            assert key in store.directory
            assert store.physical_holder(key) == ring.successor(key)
            assert group_fully_held(ring, repair, key)
            assert "n2" not in repair.tracker.holders_of(key)

    def test_leave_refused_at_floor(self):
        ring, sim, store, repair, membership = make_cluster(n=3, min_nodes=3)
        assert not membership.leave("n0")
        assert len(ring) == 3

    def test_sole_copy_hands_off_synchronously(self):
        # r=1: the leaver holds the only copy, which must transfer before
        # it disconnects — graceful departures never lose data.
        ring, sim, store, repair, membership = make_cluster(
            n=4, replica_count=1, min_nodes=2
        )
        key = key_at(300)
        store.write(key, 500)
        owner = ring.successor(key)
        assert membership.leave(owner)
        assert key in store.directory
        assert repair.stats.lost_keys == 0
        assert repair.stats.handoff_bytes == 500
        sim.run(until=7200.0)
        assert store.physical_holder(key) == ring.successor(key)


class TestCrash:
    def test_crash_repairs_from_survivors(self):
        ring, sim, store, repair, membership = make_cluster()
        keys = [key_at(t) for t in range(10, 400, 10)]
        for key in keys:
            store.write(key, 1000)
        assert membership.crash("n2")
        sim.run(until=7200.0)
        assert repair.stats.lost_keys == 0
        assert repair.stats.completed > 0
        for key in keys:
            assert key in store.directory
            assert store.physical_holder(key) == ring.successor(key)
            assert group_fully_held(ring, repair, key)
            assert "n2" not in repair.tracker.holders_of(key)

    def test_crash_of_sole_copy_records_loss(self):
        ring, sim, store, repair, membership = make_cluster(
            n=4, replica_count=1, min_nodes=2
        )
        key = key_at(300)
        store.write(key, 500)
        owner = ring.successor(key)
        assert membership.crash(owner)
        assert key not in store.directory
        assert repair.stats.lost_keys == 1
        assert repair.stats.lost_bytes == 500
        assert repair.stats.losses[0].key == key
        # Loss is not a removal: the daily removal series stays clean.
        assert store.ledger.total_removed == 0

    def test_crash_voids_pending_pointers_without_stabilizing(self):
        ring, sim, store, repair, membership = make_cluster(stabilization=3600.0)
        keys = [key_at(t) for t in range(10, 400, 10)]
        for key in keys:
            store.write(key, 1000)
        # Give n2 a pending adoption, then kill it before stabilization.
        position = membership.join("mover")
        assert position is not None
        pending_before = len(store.pointer_table)
        assert pending_before > 0
        assert membership.crash("mover")
        sim.run(until=8000.0)
        assert store.pointer_table.dropped_count > 0
        # The voided records' arcs re-adopted and eventually stabilized
        # under the survivors; no key is left dangling.
        for key in keys:
            assert store.physical_holder(key) == ring.successor(key)


class TestRepairWindow:
    """Loss happens iff a whole replica group dies inside one repair window."""

    def _one_key_cluster(self):
        # 10 B/s repair bandwidth: an 8000-byte block takes 800 s to repair.
        ring, sim, store, repair, membership = make_cluster(
            n=5, replica_count=2, bandwidth=10.0, min_nodes=2
        )
        key = key_at(300)
        store.write(key, 8000)
        first, second = ring.successors(key, 2)
        return ring, sim, store, repair, membership, key, first, second

    def test_second_crash_inside_window_loses_block(self):
        ring, sim, store, repair, membership, key, first, second = (
            self._one_key_cluster()
        )
        assert membership.crash(first)
        sim.run(until=100.0)  # repair needs ~800 s; still in flight
        assert membership.crash(second)
        sim.run(until=20000.0)
        assert key not in store.directory
        assert repair.stats.lost_keys == 1

    def test_second_crash_after_repair_is_survivable(self):
        ring, sim, store, repair, membership, key, first, second = (
            self._one_key_cluster()
        )
        assert membership.crash(first)
        sim.run(until=2000.0)  # repair landed at ~800 s
        assert membership.crash(second)
        sim.run(until=20000.0)
        assert key in store.directory
        assert repair.stats.lost_keys == 0
        assert group_fully_held(ring, repair, key, replicas=2)


class TestChurnProperties:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_churn_sequence_converges(self, seed):
        ring, sim, store, repair, membership = make_cluster(n=8, seed=seed)
        rng = random.Random(100 + seed)
        keys = [key_at(t) for t in range(5, 1000, 25)]
        for key in keys:
            store.write(key, 1000)
        now = 0.0
        for step in range(25):
            now += 600.0
            sim.run(until=now)
            op = rng.choice(["join", "leave", "crash"])
            if op == "join":
                membership.join(f"j{seed}_{step}")
            else:
                names = sorted(ring.names())
                victim = names[rng.randrange(len(names))]
                getattr(membership, op)(victim)
            # No key is ever owner-less: the ring never shrinks below the
            # floor, and every directory key keeps at least one live copy.
            assert len(ring) >= membership.min_nodes
            for key in store.directory.keys():
                assert repair.tracker.live_count(key) >= 1
        sim.run(until=now + 7200.0)
        # Single crashes 600 s apart never kill a whole r=3 group: repair
        # (at test bandwidth) finishes long before the next departure.
        assert repair.stats.lost_keys == 0
        live = set(ring.names())
        for key in keys:
            assert key in store.directory
            assert group_fully_held(ring, repair, key)
            assert set(repair.tracker.holders_of(key)) <= live


class TestTraceAndStorm:
    def test_failure_trace_replays_as_membership_change(self):
        ring, sim, store, repair, membership = make_cluster(n=6)
        for t in range(10, 400, 20):
            store.write(key_at(t), 800)
        trace = FailureTrace(
            ["n1", "n3"],
            [
                FailureEvent(time=100.0, node="n1", up=False),
                FailureEvent(time=5000.0, node="n1", up=True),
                FailureEvent(time=9000.0, node="n3", up=False),
            ],
            duration=20000.0,
        )
        assert membership.schedule_failure_trace(trace) == 3
        sim.run(until=30000.0)
        assert membership.metrics.counter("membership.crashes").value == 2
        assert membership.metrics.counter("membership.joins").value == 1
        assert "n1" in ring and "n3" not in ring
        assert repair.stats.lost_keys == 0

    def test_storm_ops_deterministic(self):
        config = ChurnStormConfig(duration=7200.0, join_rate=6.0, leave_rate=3.0, crash_rate=3.0)
        assert generate_churn_ops(config, random.Random(9)) == generate_churn_ops(
            config, random.Random(9)
        )

    def test_churn_storm_runs_deterministically(self):
        def run_once():
            ring, sim, store, repair, membership = make_cluster(n=10, seed=5)
            for t in range(10, 500, 10):
                store.write(key_at(t), 800)
            scheduled = membership.schedule_churn_storm(
                ChurnStormConfig(
                    duration=6 * 3600.0, join_rate=4.0, leave_rate=2.0, crash_rate=2.0
                )
            )
            sim.run(until=8 * 3600.0)
            return (
                scheduled,
                sorted(ring.names()),
                repair.stats.to_row(),
                membership.metrics.counter("membership.joins").value,
                membership.metrics.counter("membership.leaves").value,
                membership.metrics.counter("membership.crashes").value,
            )

        assert run_once() == run_once()

    def test_storm_respects_min_nodes_floor(self):
        ring, sim, store, repair, membership = make_cluster(n=4, min_nodes=4, seed=2)
        membership.schedule_churn_storm(
            ChurnStormConfig(duration=3600.0, join_rate=0.0, leave_rate=30.0, crash_rate=30.0)
        )
        sim.run(until=7200.0)
        assert len(ring) == 4
        assert membership.metrics.counter("membership.refused").value > 0
