"""Tests for the runtime determinism sanitizer (repro.lint.detsan).

These tests run with and without an *outer* sanitizer in force: when the
suite itself runs under ``$REPRO_DETSAN=1`` the autouse conftest fixture
already holds one, so restore checks branch on :func:`active` instead of
assuming the pristine interpreter state.
"""

from __future__ import annotations

import datetime
import os
import random
import time
import uuid

import pytest

from repro.lint.detsan import (
    DETSAN_ENV,
    DeterminismViolation,
    active,
    determinism_sanitizer,
    enabled_from_env,
    maybe_sanitize,
)
from repro.runner.cells import CELL_KINDS, cell_kind, execute_cell


def _guarded(fn) -> bool:
    return getattr(fn, "__name__", "") == "detsan_guard"


# ---------------------------------------------------------------------------
# the acceptance-criteria test: injected wall-clock call raises


def test_injected_wall_clock_raises():
    with determinism_sanitizer():
        with pytest.raises(DeterminismViolation):
            time.time()


def test_all_time_entry_points_raise():
    with determinism_sanitizer():
        for fn in (time.time, time.time_ns, time.monotonic, time.monotonic_ns):
            with pytest.raises(DeterminismViolation):
                fn()


def test_perf_counter_stays_available():
    with determinism_sanitizer():
        assert time.perf_counter() > 0.0


def test_datetime_now_raises_but_construction_works():
    with determinism_sanitizer():
        with pytest.raises(DeterminismViolation):
            datetime.datetime.now()
        with pytest.raises(DeterminismViolation):
            datetime.datetime.utcnow()
        with pytest.raises(DeterminismViolation):
            datetime.date.today()
        # Explicit construction and arithmetic stay deterministic & legal.
        stamp = datetime.datetime(2020, 1, 1, 12, 0, 0)
        assert (stamp + datetime.timedelta(days=1)).day == 2
        assert datetime.date(2020, 1, 1).year == 2020


def test_global_rng_and_os_entropy_raise():
    with determinism_sanitizer():
        with pytest.raises(DeterminismViolation):
            random.random()
        with pytest.raises(DeterminismViolation):
            random.randint(0, 10)
        with pytest.raises(DeterminismViolation):
            random.shuffle([1, 2, 3])
        with pytest.raises(DeterminismViolation):
            os.urandom(8)
        with pytest.raises(DeterminismViolation):
            uuid.uuid4()


def test_seeded_rng_is_untouched():
    with determinism_sanitizer():
        rng = random.Random(42)
        draws = [rng.random() for _ in range(3)]
    assert draws == [random.Random(42).random() for _ in range(1)] + draws[1:]
    # identical reseed reproduces the stream — the sanctioned mechanism
    again = random.Random(42)
    assert [again.random() for _ in range(3)] == draws


def test_violation_message_carries_hint():
    with determinism_sanitizer():
        with pytest.raises(DeterminismViolation, match="sim.now"):
            time.time()
        with pytest.raises(DeterminismViolation, match="seeded random.Random"):
            random.random()


# ---------------------------------------------------------------------------
# patch/restore lifecycle


def test_patches_applied_and_restored():
    had_outer = active()
    with determinism_sanitizer():
        assert active()
        assert _guarded(time.time)
        assert _guarded(random.random)
        assert _guarded(os.urandom)
        assert datetime.datetime.__name__.startswith("DetsanGuarded")
    assert active() == had_outer
    if not had_outer:
        assert not _guarded(time.time)
        assert not _guarded(random.random)
        assert not _guarded(os.urandom)
        assert not datetime.datetime.__name__.startswith("DetsanGuarded")
        assert time.time() > 0


def test_reentrancy():
    with determinism_sanitizer():
        with determinism_sanitizer():
            assert active()
            with pytest.raises(DeterminismViolation):
                time.time()
        # inner exit must not strip the outer region's patches
        assert active()
        with pytest.raises(DeterminismViolation):
            time.time()


def test_restores_even_when_body_raises():
    had_outer = active()
    with pytest.raises(ValueError):
        with determinism_sanitizer():
            raise ValueError("boom")
    assert active() == had_outer
    if not had_outer:
        assert not _guarded(time.time)


# ---------------------------------------------------------------------------
# caller-aware scoping: third-party frames delegate, project frames raise


def test_third_party_caller_delegates():
    code = "result = time.time()\n"
    namespace = {"__name__": "somelib.inner", "time": time}
    with determinism_sanitizer():
        exec(compile(code, "<somelib>", "exec"), namespace)
    assert namespace["result"] > 0


def test_project_roots_all_guarded():
    code = "raised = False\ntry:\n    time.time()\nexcept Exception:\n    raised = True\n"
    for root in ("repro.sim.engine", "tests.test_x", "benchmarks.bench", "__main__"):
        namespace = {"__name__": root, "time": time}
        with determinism_sanitizer():
            exec(compile(code, "<fixture>", "exec"), namespace)
        assert namespace["raised"], f"caller {root} should have been guarded"


# ---------------------------------------------------------------------------
# env gating


def test_enabled_from_env_values(monkeypatch):
    for value in ("1", "true", "YES", " on "):
        monkeypatch.setenv(DETSAN_ENV, value)
        assert enabled_from_env()
    for value in ("", "0", "false", "off", "no"):
        monkeypatch.setenv(DETSAN_ENV, value)
        assert not enabled_from_env()
    monkeypatch.delenv(DETSAN_ENV)
    assert not enabled_from_env()


def test_maybe_sanitize_follows_env(monkeypatch):
    monkeypatch.setenv(DETSAN_ENV, "0")
    depth_before = active()
    with maybe_sanitize():
        assert active() == depth_before  # no-op: depth unchanged
    monkeypatch.setenv(DETSAN_ENV, "1")
    with maybe_sanitize():
        assert active()
        with pytest.raises(DeterminismViolation):
            time.time()
    assert active() == depth_before


# ---------------------------------------------------------------------------
# runner wiring: execute_cell sanitizes the cell body


def test_execute_cell_runs_under_sanitizer(monkeypatch):
    monkeypatch.setenv(DETSAN_ENV, "1")

    @cell_kind("detsan-test-wallclock")
    def wallclock_cell(params):
        return time.time()

    @cell_kind("detsan-test-clean")
    def clean_cell(params):
        return random.Random(params["seed"]).random()

    try:
        with pytest.raises(DeterminismViolation):
            execute_cell("detsan-test-wallclock", {})
        assert execute_cell("detsan-test-clean", {"seed": 7}) == \
            random.Random(7).random()
    finally:
        del CELL_KINDS["detsan-test-wallclock"]
        del CELL_KINDS["detsan-test-clean"]


def test_execute_cell_noop_without_env(monkeypatch):
    monkeypatch.delenv(DETSAN_ENV, raising=False)

    @cell_kind("detsan-test-unsanitized")
    def unsanitized_cell(params):
        return active()

    try:
        # without the env knob the cell sees whatever the ambient state is
        assert execute_cell("detsan-test-unsanitized", {}) == active()
    finally:
        del CELL_KINDS["detsan-test-unsanitized"]
