"""Smoke tests for the per-figure experiment drivers at tiny scale.

Each driver must run end-to-end and produce rows with the fields its
formatter prints; the paper-shape assertions live in the benchmarks, which
run at larger scale.
"""

import pytest

from repro.experiments.common import clear_cache, format_table

TINY = dict(users=3, days=0.5, seed=21)


@pytest.fixture(autouse=True, scope="module")
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestFormatting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": None}]
        text = format_table(rows, ["a", "b"], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_empty(self):
        assert "(no rows)" in format_table([], ["a"], title="T")


class TestTable1:
    def test_rows(self):
        from repro.experiments.table1_workloads import format_table1, run_table1

        rows = run_table1(**TINY)
        assert len(rows) == 3
        assert {row["workload"] for row in rows} == {
            "hp-synth", "harvard-synth", "web-synth"
        }
        assert all(row["accesses"] > 0 for row in rows)
        assert "Table 1" in format_table1(rows)


class TestFig3:
    def test_rows_and_shape(self):
        from repro.experiments.fig3_locality import format_fig3, run_fig3

        rows = run_fig3(**TINY)
        assert len(rows) == 9  # 3 workloads x 3 scenarios
        by_key = {(r["workload"], r["scenario"]): r for r in rows}
        for workload in ("hp-synth", "harvard-synth", "web-synth"):
            trad = by_key[(workload, "traditional")]
            ordered = by_key[(workload, "ordered")]
            bound = by_key[(workload, "lower-bound")]
            assert trad["normalized"] == 1.0
            assert ordered["normalized"] < 1.0
            assert bound["normalized"] <= ordered["normalized"] + 1e-9
        assert "Figure 3" in format_fig3(rows)


class TestAvailabilityDrivers:
    @pytest.fixture(scope="class")
    def kwargs(self):
        return dict(
            users=3, days=0.5, seed=21, trials=1, n_nodes=16,
            inters=(5.0, 60.0),
        )

    def test_fig7(self, kwargs):
        from repro.experiments.fig7_unavailability import format_fig7, run_fig7

        rows = run_fig7(**kwargs)
        assert len(rows) == 6  # 2 inters x 3 systems
        assert all(0.0 <= r["mean_unavailability"] <= 1.0 for r in rows)
        assert "Figure 7" in format_fig7(rows)

    def test_fig8(self, kwargs):
        from repro.experiments.fig8_per_user import format_fig8, run_fig8

        rows = run_fig8(inter=5.0, **{k: v for k, v in kwargs.items() if k != "inters"})
        assert any(r["rank"] == "affected-users" for r in rows)
        assert "Figure 8" in format_fig8(rows)

    def test_table2(self, kwargs):
        from repro.experiments.table2_tasks import format_table2, run_table2

        rows = run_table2(**kwargs)
        assert len(rows) == 2
        for row in rows:
            assert row["nodes_d2"] <= row["nodes_traditional"]
            assert row["blocks_per_task"] >= row["files_per_task"]
        assert "Table 2" in format_table2(rows)


class TestPerformanceDrivers:
    @pytest.fixture(scope="class")
    def kwargs(self):
        return dict(
            users=3, days=0.5, seed=21,
            node_sizes=(12, 24), bandwidths_kbps=(1500.0,), n_windows=2,
        )

    def test_fig9(self, kwargs):
        from repro.experiments.fig9_lookup_traffic import format_fig9, run_fig9

        rows = run_fig9(**kwargs)
        assert len(rows) == 4  # 2 modes x 2 sizes
        for row in rows:
            assert row["msgs_per_node_d2"] <= row["msgs_per_node_traditional"]
        assert "Figure 9" in format_fig9(rows)

    def test_fig10_and_11(self, kwargs):
        from repro.experiments.fig10_speedup import format_fig10, run_fig10
        from repro.experiments.fig11_speedup_file import run_fig11

        rows = run_fig10(**kwargs)
        assert all(row["speedup"] > 0 for row in rows)
        assert "Figure 10" in format_fig10(rows)
        rows11 = run_fig11(**kwargs)
        assert len(rows11) == len(rows)

    def test_fig12(self, kwargs):
        from repro.experiments.fig12_per_user_speedup import format_fig12, run_fig12

        rows = run_fig12(**kwargs)
        assert rows
        per_mode = [r for r in rows if r["mode"] == "seq"]
        speeds = [r["speedup"] for r in per_mode]
        assert speeds == sorted(speeds, reverse=True)
        assert "Figure 12" in format_fig12(rows)

    def test_fig13(self, kwargs):
        from repro.experiments.fig13_cache_miss import format_fig13, run_fig13

        rows = run_fig13(**kwargs)
        for row in rows:
            assert 0.0 <= row["miss_rate_d2"] <= 1.0
            assert row["miss_rate_d2"] <= row["miss_rate_traditional"]
        assert "Figure 13" in format_fig13(rows)

    def test_fig14_and_15(self, kwargs):
        from repro.experiments.fig14_latency_scatter import (
            format_fig14,
            run_fig14,
            scatter_points,
        )
        from repro.experiments.fig15_latency_scatter_file import run_fig15

        rows = run_fig14(**kwargs)
        for row in rows:
            assert row["faster_in_d2"] <= row["groups"]
        assert "Figure 14" in format_fig14(rows)
        points = scatter_points(mode="seq", **kwargs)
        assert all(p["baseline_s"] >= 0 and p["d2_s"] >= 0 for p in points)
        assert run_fig15(**kwargs)


class TestBalanceDrivers:
    @pytest.fixture(scope="class")
    def kwargs(self):
        return dict(n_nodes=12, days=1.0, seed=21)

    def test_table3(self, kwargs):
        from repro.experiments.table3_churn import format_table3, run_table3

        rows = run_table3(users=3, **kwargs)
        workloads = {row["workload"] for row in rows}
        assert workloads == {"Harvard", "Webcache"}
        assert "Table 3" in format_table3(rows)

    def test_fig16(self, kwargs):
        from repro.experiments.fig16_imbalance_harvard import (
            format_fig16,
            run_fig16,
            summarize_fig16,
        )

        rows = run_fig16(users=3, **kwargs)
        assert {r["system"] for r in rows} == {
            "d2", "traditional", "traditional-file", "traditional+merc"
        }
        summary = summarize_fig16(users=3, **kwargs)
        assert "Figure 16" in format_fig16(summary)

    def test_fig17(self, kwargs):
        from repro.experiments.fig17_imbalance_webcache import (
            format_fig17,
            run_fig17,
            summarize_fig17,
        )

        rows = run_fig17(**kwargs)
        assert {r["system"] for r in rows} == {"d2", "traditional"}
        assert "Figure 17" in format_fig17(summarize_fig17(**kwargs))

    def test_table4(self, kwargs):
        from repro.experiments.table4_overhead import (
            format_table4,
            migration_over_write,
            run_table4,
        )

        rows = run_table4(users=3, **kwargs)
        assert any(row["day"] == "total L/W" for row in rows)
        ratios = migration_over_write(users=3, **kwargs)
        assert set(ratios) == {"harvard", "webcache"}
        assert "Table 4" in format_table4(rows)


class TestDriverPlots:
    """ASCII plot variants of the time-series/scatter drivers."""

    def test_fig16_plot(self):
        from repro.experiments.fig16_imbalance_harvard import plot_fig16

        chart = plot_fig16(users=3, n_nodes=12, days=1.0, seed=21)
        assert "Figure 16" in chart
        assert "o=d2" in chart

    def test_fig17_plot(self):
        from repro.experiments.fig17_imbalance_webcache import plot_fig17

        chart = plot_fig17(n_nodes=12, days=1.0, seed=21)
        assert "Figure 17" in chart
        assert "days" in chart

    def test_fig14_plot(self):
        from repro.experiments.fig14_latency_scatter import plot_fig14

        chart = plot_fig14(
            mode="seq", users=3, days=0.5, seed=21,
            node_sizes=(12,), bandwidths_kbps=(1500.0,), n_windows=2,
        )
        assert "Figure 14" in chart
        assert "diagonal" in chart
