"""Tests for repro.obs.health and the health CLI: SLO hysteresis,
monitor lifecycle on a live deployment, and fire/resolve cycles."""

from __future__ import annotations

import json

import pytest

from repro.core.system import build_deployment
from repro.obs.health import SloEngine, SloRule, default_rules
from repro.obs.healthcli import main as health_main


def series_row(name, window, value, *, count=1, labels=None, width=10.0):
    return {
        "type": "series",
        "name": name,
        "kind": "gauge",
        "labels": dict(labels or {}),
        "window": window,
        "start": window * width,
        "end": (window + 1) * width,
        "count": count,
        "value": value,
    }


def feed(engine, name, values, start_window=0, **kwargs):
    transitions = []
    for offset, value in enumerate(values):
        count = 0 if value is None else 1
        transitions.extend(engine.observe([
            series_row(name, start_window + offset, value, count=count, **kwargs)
        ]))
    return transitions


# ---------------------------------------------------------------------------
# rule validation


def test_rule_validation_errors():
    with pytest.raises(ValueError):
        SloRule(name="x", series="s", op="~=").validate()
    with pytest.raises(ValueError):
        SloRule(name="x", series="s", op=">=", severity="fatal").validate()
    with pytest.raises(ValueError):
        SloRule(name="x", series="s", op=">=", for_windows=0).validate()
    with pytest.raises(ValueError):
        SloEngine([
            SloRule(name="dup", series="a", op=">="),
            SloRule(name="dup", series="b", op=">="),
        ])


def test_default_rules_are_valid():
    engine = SloEngine(default_rules())
    assert {rule.name for rule in engine.rules} == {
        "replica-deficit", "load-imbalance", "hit-ratio-collapse",
        "pointer-stall", "repair-backlog-growth",
    }


# ---------------------------------------------------------------------------
# fire/resolve hysteresis


def test_fire_and_resolve_hysteresis():
    rule = SloRule(name="r", series="s", op=">=", threshold=5.0,
                   for_windows=2, resolve_windows=2)
    engine = SloEngine([rule])
    # One breach window is not enough; the second fires; one clear window
    # is not enough to resolve; the second resolves.
    events = feed(engine, "s", [7.0, 8.0, 1.0, 9.0])
    assert [(e["event"], e["window"]) for e in events] == [("fire", 1)]
    # The clear streak was reset by the re-breach at window 3: two more
    # consecutive clears are needed.
    events = feed(engine, "s", [1.0, 1.0], start_window=4)
    assert [(e["event"], e["window"]) for e in events] == [("resolve", 5)]
    summary = engine.summary()
    assert summary["alerts_fired"] == 1
    assert summary["alerts_resolved"] == 1
    assert summary["alerts_active"] == 0
    (alert,) = engine.alerts
    assert alert.fired_window == 1 and alert.resolved_window == 5
    assert alert.peak == 9.0


def test_empty_windows_freeze_streaks():
    rule = SloRule(name="r", series="s", op=">=", threshold=5.0, for_windows=2)
    engine = SloEngine([rule])
    # breach, empty, breach: the empty window neither clears nor extends
    # the streak, so the second breach completes for_windows=2 and fires.
    events = feed(engine, "s", [7.0, None, 8.0])
    assert [(e["event"], e["window"]) for e in events] == [("fire", 2)]
    # empty windows also never resolve an active alert
    events = feed(engine, "s", [None, None], start_window=3)
    assert events == []
    assert engine.active_alerts()


def test_increasing_op():
    rule = SloRule(name="growth", series="s", op="increasing", for_windows=3)
    engine = SloEngine([rule])
    # First window has no predecessor; then three consecutive increases.
    events = feed(engine, "s", [1.0, 2.0, 3.0, 4.0])
    assert [(e["event"], e["window"]) for e in events] == [("fire", 3)]
    # A flat window clears (resolve_windows=1).
    events = feed(engine, "s", [4.0], start_window=4)
    assert [(e["event"], e["window"]) for e in events] == [("resolve", 4)]


def test_per_label_states_are_independent():
    rule = SloRule(name="r", series="node.deficit", op=">=", threshold=1.0)
    engine = SloEngine([rule])
    events = feed(engine, "node.deficit", [2.0], labels={"node": "a"})
    events += feed(engine, "node.deficit", [0.0], labels={"node": "b"})
    assert [(e["event"], e["labels"]["node"]) for e in events] == [("fire", "a")]
    assert len(engine.active_alerts()) == 1


# ---------------------------------------------------------------------------
# HealthMonitor on a live deployment


def run_crash_scenario():
    deployment = build_deployment("d2", 8, seed=11)
    for i in range(40):
        deployment.store.write((i + 1) * 10**14, 8192)
    deployment.stabilize()
    deployment.enable_dynamic_membership(min_nodes=4)
    monitor = deployment.enable_health_monitoring(window=30.0)
    victim = deployment.node_names[0]
    deployment.advance_to(10.0)
    assert deployment.membership.crash(victim)
    deployment.advance_to(600.0)
    rows = monitor.finish()
    return deployment, monitor, rows


def test_monitor_deficit_fires_and_resolves_after_crash():
    deployment, monitor, rows = run_crash_scenario()
    alerts = [r for r in rows if r["type"] == "alert"
              and r["rule"] == "replica-deficit"]
    events = [r["event"] for r in alerts]
    assert "fire" in events and "resolve" in events
    fire = next(r for r in alerts if r["event"] == "fire")
    resolve = next(r for r in alerts if r["event"] == "resolve")
    assert resolve["window"] > fire["window"]
    summary = monitor.summary()
    assert summary["alerts_fired"] >= 1
    assert summary["alerts_active"] == 0
    # the registry counters mirror the engine ledger
    assert deployment.metrics.counter("health.alerts_fired").value == \
        summary["alerts_fired"]


def test_monitor_rows_are_deterministic():
    _, _, first = run_crash_scenario()
    _, _, second = run_crash_scenario()
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)


def test_observability_snapshot_includes_health():
    deployment, monitor, _rows = run_crash_scenario()
    snapshot = deployment.observability_snapshot()
    assert snapshot["health"]["alerts_fired"] == monitor.summary()["alerts_fired"]


def test_enable_health_monitoring_is_idempotent():
    deployment = build_deployment("d2", 4, seed=3)
    monitor = deployment.enable_health_monitoring(window=60.0)
    assert deployment.enable_health_monitoring(window=15.0) is monitor
    assert monitor.window == 60.0


# ---------------------------------------------------------------------------
# the health CLI


def write_jsonl(path, rows):
    with open(path, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True) + "\n")


def test_healthcli_renders_and_requires_cycle(tmp_path, capsys):
    _, _, rows = run_crash_scenario()
    target = tmp_path / "health.jsonl"
    write_jsonl(str(target), rows)

    assert health_main([str(target)]) == 0
    out = capsys.readouterr().out
    assert "alert timeline" in out
    assert "replica-deficit" in out

    assert health_main([str(target), "--require-cycle", "replica-deficit"]) == 0
    assert health_main([str(target), "--require-cycle", "load-imbalance"]) == 1


def test_healthcli_rejects_bad_rows(tmp_path, capsys):
    target = tmp_path / "bad.jsonl"
    target.write_text('{"type": "series", "name": "x"}\nnot json\n')
    assert health_main([str(target)]) == 1
    err = capsys.readouterr().err
    assert "INVALID" in err


def test_healthcli_missing_file(tmp_path, capsys):
    assert health_main([str(tmp_path / "nope.jsonl")]) == 1
