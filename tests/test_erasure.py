"""Tests for the erasure-coding redundancy model."""

import random

import pytest

from repro.dht.consistent_hashing import random_node_ids
from repro.dht.ring import Ring
from repro.store.erasure import (
    ErasureConfig,
    equivalent_configs,
    fragment_holders,
    group_availability_probability,
    key_available_erasure,
    task_availability_probability,
)


@pytest.fixture
def ring():
    ring = Ring()
    rng = random.Random(8)
    for i, node_id in enumerate(random_node_ids(12, rng)):
        ring.join(f"n{i}", node_id)
    return ring


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ErasureConfig(total=2, needed=3)
        with pytest.raises(ValueError):
            ErasureConfig(total=2, needed=0)

    def test_storage_overhead(self):
        assert ErasureConfig(6, 2).storage_overhead == pytest.approx(3.0)
        assert ErasureConfig.replication(3).storage_overhead == pytest.approx(3.0)

    def test_replication_is_degenerate_code(self):
        config = ErasureConfig.replication(4)
        assert (config.total, config.needed) == (4, 1)

    def test_fragment_size(self):
        assert ErasureConfig(6, 2).fragment_size(8192) == 4096
        assert ErasureConfig(6, 3).fragment_size(8192) == 2731  # ceil


class TestAvailability:
    def test_holders_are_successors(self, ring):
        config = ErasureConfig(4, 2)
        assert fragment_holders(ring, 42, config) == ring.successors(42, 4)

    def test_needs_k_fragments(self, ring):
        config = ErasureConfig(4, 2)
        holders = fragment_holders(ring, 42, config)
        assert key_available_erasure(ring, 42, config, alive=set(holders[:2]))
        assert not key_available_erasure(ring, 42, config, alive={holders[0]})

    def test_replication_needs_one(self, ring):
        config = ErasureConfig.replication(3)
        holders = fragment_holders(ring, 42, config)
        assert key_available_erasure(ring, 42, config, alive={holders[2]})
        assert not key_available_erasure(ring, 42, config, alive=set())


class TestAnalytics:
    def test_replication_probability(self):
        config = ErasureConfig.replication(3)
        # 1 - (1-p)^3 for p = 0.9.
        assert group_availability_probability(config, 0.9) == pytest.approx(0.999)

    def test_erasure_beats_replication_at_same_cost(self):
        p = 0.9
        replication = group_availability_probability(ErasureConfig.replication(3), p)
        coded = group_availability_probability(ErasureConfig(6, 2), p)
        assert coded > replication

    def test_task_probability_compounds(self):
        config = ErasureConfig.replication(3)
        single = group_availability_probability(config, 0.9)
        assert task_availability_probability(config, 0.9, groups=4) == pytest.approx(
            single**4
        )

    def test_fewer_groups_dominate(self):
        """The paper's core argument, analytically: 2 groups beat 20."""
        config = ErasureConfig.replication(3)
        d2 = task_availability_probability(config, 0.95, groups=2)
        trad = task_availability_probability(config, 0.95, groups=20)
        assert d2 > trad

    def test_probability_bounds(self):
        config = ErasureConfig(5, 3)
        assert group_availability_probability(config, 0.0) == 0.0
        assert group_availability_probability(config, 1.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            group_availability_probability(config, 1.5)

    def test_monte_carlo_matches_analytic(self, ring):
        """Simulated fragment availability converges to the formula."""
        rng = random.Random(5)
        config = ErasureConfig(5, 2)
        p = 0.8
        trials = 4000
        successes = 0
        holders = fragment_holders(ring, 42, config)
        for _ in range(trials):
            alive = {h for h in holders if rng.random() < p}
            successes += key_available_erasure(ring, 42, config, alive)
        observed = successes / trials
        expected = group_availability_probability(config, p)
        assert observed == pytest.approx(expected, abs=0.03)


class TestEquivalentConfigs:
    def test_budget_filters(self):
        configs = equivalent_configs(3.0, max_total=6)
        assert ErasureConfig(6, 2) in configs
        assert ErasureConfig(3, 1) in configs
        assert all(c.storage_overhead <= 3.0 + 1e-9 for c in configs)

    def test_tight_budget(self):
        configs = equivalent_configs(1.0, max_total=4)
        assert all(c.total == c.needed for c in configs)
