"""Tests for the integrity chain (root signing covers all metadata)."""

import pytest

from repro.fs.blocks import BLOCK_SIZE
from repro.fs.fslayer import DhtFileSystem
from repro.fs.integrity import (
    IntegrityError,
    snapshot_volume,
    verify_block,
    verify_snapshot,
)
from repro.fs.keyschemes import make_scheme


@pytest.fixture
def fs():
    fs = DhtFileSystem(make_scheme("d2", "vol"))
    fs.format()
    fs.makedirs("/home/alice")
    fs.create("/home/alice/a.txt", size=2 * BLOCK_SIZE)
    fs.create("/home/alice/b.txt", size=BLOCK_SIZE)
    fs.makedirs("/srv")
    return fs


class TestSnapshot:
    def test_snapshot_covers_tree(self, fs):
        snapshot = snapshot_volume(fs, "alice")
        assert "/home/alice/a.txt" in snapshot.files
        assert "/home/alice" in snapshot.directories
        assert "/" in snapshot.directories

    def test_valid_snapshot_verifies(self, fs):
        snapshot = snapshot_volume(fs, "alice")
        assert verify_snapshot(snapshot, "alice")

    def test_wrong_publisher_rejected(self, fs):
        snapshot = snapshot_volume(fs, "alice")
        with pytest.raises(IntegrityError, match="signature"):
            verify_snapshot(snapshot, "mallory")

    def test_snapshot_changes_with_content(self, fs):
        before = snapshot_volume(fs, "alice")
        fs.write("/home/alice/a.txt", offset=0, length=10)
        after = snapshot_volume(fs, "alice")
        assert before.root_hash != after.root_hash

    def test_snapshot_stable_without_changes(self, fs):
        assert (
            snapshot_volume(fs, "alice").root_hash
            == snapshot_volume(fs, "alice").root_hash
        )


class TestTamperDetection:
    def test_tampered_file_detected(self, fs):
        snapshot = snapshot_volume(fs, "alice")
        manifest = snapshot.files["/home/alice/a.txt"]
        snapshot.files["/home/alice/a.txt"] = type(manifest)(
            name=manifest.name,
            size=manifest.size + 1,  # attacker alters the file
            version=manifest.version,
            block_hashes=manifest.block_hashes,
        )
        with pytest.raises(IntegrityError, match="hash mismatch"):
            verify_snapshot(snapshot, "alice")

    def test_swapped_subtree_detected(self, fs):
        snapshot = snapshot_volume(fs, "alice")
        home = snapshot.directories["/home"]
        kind, _ = home.entries["alice"]
        home.entries["alice"] = (kind, "0" * 64)
        with pytest.raises(IntegrityError, match="hash mismatch"):
            verify_snapshot(snapshot, "alice")

    def test_missing_manifest_detected(self, fs):
        snapshot = snapshot_volume(fs, "alice")
        del snapshot.files["/home/alice/b.txt"]
        with pytest.raises(IntegrityError, match="missing file manifest"):
            verify_snapshot(snapshot, "alice")

    def test_forged_root_version_detected(self, fs):
        snapshot = snapshot_volume(fs, "alice")
        snapshot.root_version += 1  # replay/rollback attempt
        with pytest.raises(IntegrityError, match="signature"):
            verify_snapshot(snapshot, "alice")


class TestBlockVerification:
    def test_correct_block_verifies(self, fs):
        snapshot = snapshot_volume(fs, "alice")
        node = fs.namespace.resolve_file("/home/alice/a.txt")
        version = node.block_versions.get(1, node.version)
        assert verify_block(snapshot, "/home/alice/a.txt", 1, version)

    def test_stale_version_rejected(self, fs):
        fs.write("/home/alice/a.txt", offset=0, length=10)  # bumps block 1
        snapshot = snapshot_volume(fs, "alice")
        node = fs.namespace.resolve_file("/home/alice/a.txt")
        stale = node.block_versions[1] - 1
        assert not verify_block(snapshot, "/home/alice/a.txt", 1, stale)

    def test_unknown_path_rejected(self, fs):
        snapshot = snapshot_volume(fs, "alice")
        with pytest.raises(IntegrityError):
            verify_block(snapshot, "/ghost", 1, 1)

    def test_out_of_range_block_rejected(self, fs):
        snapshot = snapshot_volume(fs, "alice")
        with pytest.raises(IntegrityError):
            verify_block(snapshot, "/home/alice/a.txt", 99, 1)
