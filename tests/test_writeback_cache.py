"""Tests for the 30-second write-back / buffer cache."""

import pytest

from repro.fs.blocks import BlockKind
from repro.fs.fslayer import BlockOp
from repro.fs.writeback_cache import WritebackCache


def put(ident, key, size=100, version=1):
    return BlockOp("put", key, size, BlockKind.DATA, ident, version)


def rm(ident, key, size=100, version=0):
    return BlockOp("remove", key, size, BlockKind.DATA, ident, version)


def get(ident, key, size=100, version=1):
    return BlockOp("get", key, size, BlockKind.DATA, ident, version)


class TestWriteCoalescing:
    def test_put_buffered_until_delay(self):
        cache = WritebackCache(flush_delay=30.0)
        cache.write([put("f:b1", 111)], now=0.0)
        assert cache.flush_due(now=10.0) == []
        flushed = cache.flush_due(now=30.0)
        assert [op.key for op in flushed] == [111]

    def test_rewrites_coalesce_to_last_version(self):
        """Rapid rewrites flush only the final version (temp-file savings)."""
        cache = WritebackCache(flush_delay=30.0)
        cache.write([put("f:b1", 111, version=1)], now=0.0)
        cache.write([put("f:b1", 222, version=2), rm("f:b1", 111, version=1)], now=5.0)
        flushed = cache.flush_due(now=30.0)
        keys = [op.key for op in flushed if op.action == "put"]
        assert keys == [222]
        # The superseded version never reached the DHT, so no remove for it.
        assert all(op.key != 111 for op in flushed if op.action == "remove")
        assert cache.stats.puts_superseded == 1

    def test_flush_timer_starts_at_first_dirty(self):
        cache = WritebackCache(flush_delay=30.0)
        cache.write([put("f:b1", 111, version=1)], now=0.0)
        cache.write([put("f:b1", 222, version=2)], now=29.0)
        assert [op.key for op in cache.flush_due(now=30.0) if op.action == "put"] == [222]

    def test_remove_of_buffered_put_cancels_both(self):
        cache = WritebackCache(flush_delay=30.0)
        cache.write([put("f:b1", 111)], now=0.0)
        cache.write([rm("f:b1", 111)], now=1.0)
        assert cache.flush_due(now=60.0) == []
        assert cache.stats.removes_cancelled == 1

    def test_remove_of_flushed_version_passes_through(self):
        cache = WritebackCache(flush_delay=30.0)
        cache.write([rm("f:b1", 111)], now=0.0)
        flushed = cache.flush_due(now=30.0)
        assert [(op.action, op.key) for op in flushed] == [("remove", 111)]

    def test_flush_all(self):
        cache = WritebackCache(flush_delay=30.0)
        cache.write([put("a", 1), put("b", 2)], now=0.0)
        flushed = cache.flush_all()
        assert {op.key for op in flushed} == {1, 2}
        assert cache.dirty_count == 0

    def test_separate_idents_flush_separately(self):
        cache = WritebackCache(flush_delay=30.0)
        cache.write([put("a", 1)], now=0.0)
        cache.write([put("b", 2)], now=20.0)
        first = cache.flush_due(now=30.0)
        assert [op.key for op in first] == [1]
        second = cache.flush_due(now=50.0)
        assert [op.key for op in second] == [2]

    def test_write_absorption_stat(self):
        cache = WritebackCache(flush_delay=30.0)
        for v in range(1, 5):
            cache.write([put("f", 100 + v, version=v)], now=0.0)
        cache.flush_all()
        assert cache.stats.puts_in == 4
        assert cache.stats.puts_out == 1
        assert cache.stats.write_absorption == pytest.approx(0.75)


class TestReadPath:
    def test_dirty_block_read_hits(self):
        cache = WritebackCache(flush_delay=30.0)
        cache.write([put("f:b1", 111)], now=0.0)
        assert cache.read(get("f:b1", 111), now=1.0) is True

    def test_repeated_read_within_ttl_hits(self):
        cache = WritebackCache(flush_delay=30.0)
        assert cache.read(get("f:b1", 111), now=0.0) is False
        assert cache.read(get("f:b1", 111), now=10.0) is True

    def test_read_after_ttl_misses(self):
        cache = WritebackCache(flush_delay=30.0)
        cache.read(get("f:b1", 111), now=0.0)
        assert cache.read(get("f:b1", 111), now=31.0) is False

    def test_new_version_misses(self):
        cache = WritebackCache(flush_delay=30.0)
        cache.read(get("f:b1", 111), now=0.0)
        assert cache.read(get("f:b1", 222, version=2), now=1.0) is False

    def test_filter_reads(self):
        cache = WritebackCache(flush_delay=30.0)
        ops = [get("a", 1), get("b", 2), get("a", 1)]
        missing = cache.filter_reads(ops, now=0.0)
        assert [op.key for op in missing] == [1, 2]

    def test_read_rejects_non_get(self):
        cache = WritebackCache()
        with pytest.raises(ValueError):
            cache.read(put("a", 1), now=0.0)

    def test_staleness_bounded_by_flush_delay(self):
        """A block is dirty for at most flush_delay before others see it."""
        cache = WritebackCache(flush_delay=30.0)
        cache.write([put("f", 1)], now=100.0)
        assert cache.flush_due(now=129.9) == []
        assert cache.flush_due(now=130.0) != []
