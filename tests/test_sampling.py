"""Tests for Mercury-style random-walk node sampling."""

import random

import pytest

from repro.dht.keyspace import KEY_SPACE
from repro.dht.ring import Ring
from repro.dht.sampling import (
    empirical_distribution,
    random_walk_sample,
    sample_other,
)


def uniform_ring(n):
    ring = Ring()
    step = KEY_SPACE // n
    for i in range(n):
        ring.join(f"n{i}", (i + 1) * step - 1)
    return ring


def skewed_ring(n):
    """Node arcs spanning ~6 orders of magnitude (post-balancing shape)."""
    ring = Ring()
    position = 0
    for i in range(n):
        position += 10 ** (3 + (i % 6))
        ring.join(f"n{i}", position)
    return ring


class TestBasics:
    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError):
            random_walk_sample(Ring(), "x", random.Random(0))

    def test_single_node(self):
        ring = Ring()
        ring.join("solo", 5)
        assert random_walk_sample(ring, "solo", random.Random(0)) == "solo"

    def test_sample_in_ring(self):
        ring = uniform_ring(16)
        sample = random_walk_sample(ring, "n0", random.Random(1))
        assert sample in ring

    def test_sample_other_never_returns_prober(self):
        ring = uniform_ring(4)
        rng = random.Random(2)
        for _ in range(50):
            assert sample_other(ring, "n0", rng) != "n0"

    def test_two_node_fallback(self):
        ring = Ring()
        ring.join("a", 10)
        ring.join("b", 20)
        assert sample_other(ring, "a", random.Random(0)) == "b"


class TestUniformity:
    def test_uniform_ring_near_uniform(self):
        ring = uniform_ring(20)
        counts = empirical_distribution(ring, random.Random(3), samples=3000)
        expected = 3000 / 20
        for count in counts.values():
            assert 0.5 * expected <= count <= 1.7 * expected

    def test_skewed_ring_stays_near_uniform(self):
        """The MH correction is what makes this pass: naive successor-of-
        random-point sampling would hit the widest arc ~1e6x more often."""
        ring = skewed_ring(24)
        counts = empirical_distribution(ring, random.Random(4), samples=4000)
        expected = 4000 / 24
        assert max(counts.values()) <= 3.0 * expected
        assert min(counts.values()) >= 0.2 * expected

    def test_naive_sampling_would_fail(self):
        """Sanity check on the premise: arc-proportional hits are wildly
        non-uniform on the skewed ring."""
        ring = skewed_ring(24)
        rng = random.Random(5)
        from collections import Counter

        counts = Counter(
            ring.successor(rng.randrange(KEY_SPACE)) for _ in range(4000)
        )
        assert max(counts.values()) > 3500  # one node absorbs nearly all


class TestBalancerIntegration:
    def test_balancer_converges_with_random_walk(self):
        from repro.dht.load_balance import KargerRuhlBalancer
        from repro.sim.engine import Simulator
        from repro.store.migration import StorageCoordinator

        rng = random.Random(6)
        ring = Ring()
        ids = set()
        while len(ids) < 12:
            ids.add(rng.randrange(KEY_SPACE))
        for i, node_id in enumerate(sorted(ids)):
            ring.join(f"n{i}", node_id)
        store = StorageCoordinator(ring, Simulator())
        base = rng.randrange(KEY_SPACE)
        for _ in range(300):
            store.write((base + rng.randrange(2**120)) % KEY_SPACE, 1)
        balancer = KargerRuhlBalancer(
            ring, store, rng=rng, sampling="random-walk"
        )
        balancer.balance_until_stable(max_rounds=250)
        loads = list(store.primary_loads().values())
        mean = sum(loads) / len(loads)
        assert max(loads) <= 4.0 * mean + 1

    def test_unknown_sampling_rejected(self):
        from repro.dht.load_balance import KargerRuhlBalancer
        from repro.sim.engine import Simulator
        from repro.store.migration import StorageCoordinator

        ring = uniform_ring(4)
        store = StorageCoordinator(ring, Simulator())
        with pytest.raises(ValueError):
            KargerRuhlBalancer(ring, store, sampling="gossip")
