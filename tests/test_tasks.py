"""Tests for task and access-group segmentation."""

import pytest

from repro.workloads.tasks import (
    TASK_DURATION_CAP,
    segment_access_groups,
    segment_tasks,
    task_statistics,
)
from repro.workloads.trace import CREATE, READ, Trace, TraceRecord, WRITE


def reads(times, user="u", path="/f"):
    return [TraceRecord(t, user, READ, path) for t in times]


class TestTaskSegmentation:
    def test_gap_splits_tasks(self):
        trace = Trace("t", reads([0.0, 1.0, 10.0, 11.0]))
        tasks = segment_tasks(trace, inter=5.0)
        assert [len(t) for t in tasks] == [2, 2]

    def test_gap_at_threshold_does_not_split(self):
        trace = Trace("t", reads([0.0, 5.0]))
        tasks = segment_tasks(trace, inter=5.0)
        assert len(tasks) == 1

    def test_duration_cap_splits(self):
        times = [i * 4.0 for i in range(100)]  # 396 s of 4 s gaps
        trace = Trace("t", reads(times))
        tasks = segment_tasks(trace, inter=5.0)
        assert len(tasks) >= 2
        assert all(t.duration <= TASK_DURATION_CAP + 4.0 for t in tasks)

    def test_users_segmented_independently(self):
        records = reads([0.0, 1.0], user="a") + reads([0.5, 1.5], user="b")
        trace = Trace("t", records)
        tasks = segment_tasks(trace, inter=5.0)
        assert len(tasks) == 2
        assert {t.user for t in tasks} == {"a", "b"}

    def test_accesses_only_filter(self):
        records = [
            TraceRecord(0.0, "u", READ, "/f"),
            TraceRecord(0.5, "u", CREATE, "/g", size=10),
            TraceRecord(1.0, "u", WRITE, "/f", length=10),
        ]
        tasks = segment_tasks(Trace("t", records), inter=5.0)
        assert len(tasks) == 1
        assert len(tasks[0]) == 2  # create excluded

    def test_smaller_inter_makes_more_tasks(self):
        times = [0.0, 2.0, 4.0, 20.0, 22.0]
        trace = Trace("t", reads(times))
        fine = segment_tasks(trace, inter=1.0)
        coarse = segment_tasks(trace, inter=60.0)
        assert len(fine) > len(coarse)

    def test_tasks_sorted_by_start(self):
        records = reads([10.0], user="b") + reads([0.0], user="a")
        tasks = segment_tasks(Trace("t", records), inter=1.0)
        assert [t.start for t in tasks] == sorted(t.start for t in tasks)

    def test_every_access_in_exactly_one_task(self):
        times = [0.0, 1.0, 3.0, 100.0, 101.0, 500.0]
        trace = Trace("t", reads(times))
        tasks = segment_tasks(trace, inter=5.0)
        assert sum(len(t) for t in tasks) == len(times)


class TestAccessGroups:
    def test_think_time_splits(self):
        trace = Trace("t", reads([0.0, 0.5, 0.9, 3.0, 3.2]))
        groups = segment_access_groups(trace)
        assert [len(g) for g in groups] == [3, 2]

    def test_reads_only(self):
        records = [
            TraceRecord(0.0, "u", READ, "/f"),
            TraceRecord(0.2, "u", WRITE, "/f", length=10),
            TraceRecord(0.4, "u", READ, "/f"),
        ]
        groups = segment_access_groups(Trace("t", records))
        assert len(groups) == 1
        assert len(groups[0]) == 2

    def test_no_duration_cap(self):
        times = [i * 0.5 for i in range(1000)]  # 500 s, no gap > 1 s
        groups = segment_access_groups(Trace("t", reads(times)))
        assert len(groups) == 1


class TestStatistics:
    def test_task_statistics(self):
        trace = Trace("t", reads([0.0, 1.0, 10.0]))
        tasks = segment_tasks(trace, inter=5.0)
        stats = task_statistics(tasks)
        assert stats["tasks"] == 2
        assert stats["mean_accesses"] == pytest.approx(1.5)

    def test_empty(self):
        assert task_statistics([])["tasks"] == 0
