"""Tests for the hybrid replica-placement extension."""

import random

import pytest

from repro.core.hybrid import (
    arc_capture_exposure,
    hybrid_replica_nodes,
    key_available_hybrid,
    parallel_read_fanout,
    placement_holders,
    secondary_positions,
)
from repro.core.system import build_deployment
from repro.dht.consistent_hashing import random_node_ids
from repro.dht.keyspace import KEY_SPACE
from repro.dht.ring import Ring


@pytest.fixture
def ring():
    ring = Ring()
    rng = random.Random(4)
    for i, node_id in enumerate(random_node_ids(20, rng)):
        ring.join(f"n{i}", node_id)
    return ring


class TestSecondaryPositions:
    def test_count(self):
        assert len(secondary_positions(123, 3)) == 2
        assert secondary_positions(123, 1) == []

    def test_deterministic_and_distinct(self):
        a = secondary_positions(123, 4)
        assert a == secondary_positions(123, 4)
        assert len(set(a)) == 3

    def test_keys_differ(self):
        assert secondary_positions(1, 3) != secondary_positions(2, 3)


class TestHybridReplicaNodes:
    def test_primary_is_successor(self, ring):
        holders = hybrid_replica_nodes(ring, 42, 3)
        assert holders[0] == ring.successor(42)

    def test_distinct_holders(self, ring):
        holders = hybrid_replica_nodes(ring, 42, 3)
        assert len(set(holders)) == 3

    def test_capped_by_ring_size(self):
        ring = Ring()
        ring.join("a", 1)
        ring.join("b", 2)
        assert len(hybrid_replica_nodes(ring, 42, 5)) == 2

    def test_secondaries_differ_from_locality(self, ring):
        """Across many keys, hybrid secondaries must not equal the
        consecutive-successor groups."""
        rng = random.Random(0)
        differs = 0
        for _ in range(20):
            key = rng.randrange(KEY_SPACE)
            if hybrid_replica_nodes(ring, key, 3) != ring.successors(key, 3):
                differs += 1
        assert differs > 10

    def test_invalid_args(self, ring):
        with pytest.raises(ValueError):
            hybrid_replica_nodes(ring, 42, 0)
        with pytest.raises(ValueError):
            hybrid_replica_nodes(ring, 42, 3, mode="magic")

    def test_rank_mode_survives_clustered_ids(self):
        """The degenerate case: all node IDs inside one small arc."""
        ring = Ring()
        base = KEY_SPACE // 2
        for i in range(16):
            ring.join(f"n{i}", base + i * 1000)
        # One file's blocks: all inside a single node's arc, as a fresh
        # large-file insert would be.
        keys = [base + 100 + i for i in range(30)]
        rank_fanout = parallel_read_fanout(ring, keys, 3, placement="hybrid")
        naive_fanout = parallel_read_fanout(ring, keys, 3, placement="hybrid-position")
        assert rank_fanout >= 10
        # Naive position hashing collapses: almost every uniform hash lands
        # in the giant empty arc and resolves to its single owner.
        assert naive_fanout <= 4


class TestPlacementHolders:
    def test_locality_matches_ring(self, ring):
        assert placement_holders(ring, 42, 3, "locality") == ring.successors(42, 3)

    def test_unknown_rejected(self, ring):
        with pytest.raises(ValueError):
            placement_holders(ring, 42, 3, "chord")


class TestAvailability:
    def test_available_while_any_holder_up(self, ring):
        holders = hybrid_replica_nodes(ring, 42, 3)
        assert key_available_hybrid(ring, 42, 3, alive={holders[2]})
        assert not key_available_hybrid(ring, 42, 3, alive=set())

    def test_capture_exposure_bounds(self, ring):
        rng = random.Random(1)
        keys = [random.Random(2).randrange(KEY_SPACE) for _ in range(50)]
        for placement in ("locality", "hybrid"):
            exposure = arc_capture_exposure(
                ring, keys, 3, placement=placement, arc_nodes=3,
                trials=50, rng=rng,
            )
            assert 0.0 <= exposure <= 1.0


class TestEndToEnd:
    def test_hybrid_on_real_deployment(self):
        d = build_deployment("d2", 32, seed=3)
        d.bootstrap_volume()
        d.apply_fs_ops(d.fs.create("/big.bin", size=30 * 8192))
        keys = [k for k, _ in d.read_fetches("/big.bin")]
        locality = parallel_read_fanout(d.ring, keys, 3, placement="locality")
        hybrid = parallel_read_fanout(d.ring, keys, 3, placement="hybrid")
        assert hybrid > locality
