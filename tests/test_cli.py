"""Tests for the `python -m repro` command-line interface."""


from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "table4" in out and "hybrid" in out

    def test_default_is_list(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "finished in" in out

    def test_runs_multiple(self, capsys):
        assert main(["table1", "hotspot"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "hot spot" in out.lower()
