"""Tests for the trace model and serialization."""

import pytest

from repro.workloads.trace import (
    CREATE,
    DELETE,
    READ,
    RENAME,
    Trace,
    TraceRecord,
    WRITE,
    merge_traces,
)


def rec(t, user="u", op=READ, path="/f", **kwargs):
    return TraceRecord(t, user, op, path, **kwargs)


class TestRecord:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord(0.0, "u", "chmod", "/f")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            rec(-1.0)

    def test_frozen(self):
        record = rec(0.0)
        with pytest.raises(Exception):
            record.time = 5.0


class TestTrace:
    def test_records_sorted_on_construction(self):
        trace = Trace("t", [rec(5.0), rec(1.0), rec(3.0)])
        assert [r.time for r in trace] == [1.0, 3.0, 5.0]

    def test_duration(self):
        trace = Trace("t", [rec(1.0), rec(11.0)])
        assert trace.duration == 10.0
        assert Trace("e", []).duration == 0.0

    def test_users_sorted_unique(self):
        trace = Trace("t", [rec(0, user="b"), rec(1, user="a"), rec(2, user="b")])
        assert trace.users() == ["a", "b"]

    def test_slice_half_open(self):
        trace = Trace("t", [rec(0.0), rec(5.0), rec(10.0)])
        part = trace.slice(0.0, 10.0)
        assert len(part) == 2
        assert part.initial_files == trace.initial_files

    def test_per_user_preserves_order(self):
        trace = Trace("t", [rec(0, user="a"), rec(1, user="b"), rec(2, user="a")])
        by_user = trace.per_user()
        assert [r.time for r in by_user["a"]] == [0, 2]


class TestStats:
    def test_counts(self):
        trace = Trace(
            "t",
            [
                rec(0.0, op=READ, path="/a", length=100),
                rec(1.0, op=WRITE, path="/a", offset=0, length=50),
                rec(2.0, op=CREATE, path="/b", size=500),
                rec(3.0, op=DELETE, path="/b"),
            ],
            initial_files=[("/a", 100)],
        )
        stats = trace.stats()
        assert stats["accesses"] == 2
        assert stats["operations"] == 4
        assert stats["active_files"] == 2
        assert stats["active_bytes"] == 600

    def test_sizes_inferred_from_reads(self):
        trace = Trace("t", [rec(0.0, path="/obj", length=4096)])
        assert trace.stats()["active_bytes"] == 4096


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        trace = Trace(
            "demo",
            [rec(0.0), rec(1.0, op=RENAME, path="/f", dst_path="/g")],
            initial_dirs=["/home"],
            initial_files=[("/f", 123)],
        )
        path = str(tmp_path / "trace.jsonl")
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.name == "demo"
        assert len(loaded) == 2
        assert loaded.records[1].dst_path == "/g"
        assert loaded.initial_files == [("/f", 123)]
        assert loaded.initial_dirs == ["/home"]


class TestMerge:
    def test_merge_interleaves_and_dedups(self):
        t1 = Trace("a", [rec(0.0), rec(10.0)], initial_files=[("/x", 1)])
        t2 = Trace("b", [rec(5.0)], initial_files=[("/x", 1), ("/y", 2)])
        merged = merge_traces("ab", [t1, t2])
        assert [r.time for r in merged] == [0.0, 5.0, 10.0]
        assert merged.initial_files == [("/x", 1), ("/y", 2)]
