"""Tests for the TCP transfer-time model (slow start, idle restart)."""

import random

import pytest

from repro.sim.network import LatencyModel
from repro.sim.transport import MIN_RTO, TcpTransport


def make_transport(n=4, seed=0):
    rng = random.Random(seed)
    names = [f"n{i}" for i in range(n)]
    model = LatencyModel.random(names, rng, mean_rtt=0.100)
    return TcpTransport(model), model


class TestSlowStart:
    def test_cold_8kb_block_needs_two_rtts(self):
        """The paper's observation: an 8 KB block on a cold connection
        cannot be delivered in one RTT (initial window is 2 segments)."""
        transport, model = make_transport()
        rtt = model.rtt("n0", "n1")
        result = transport.transfer("n0", "n1", 8192, 0.0, rate_bytes_per_sec=187_500)
        assert result.duration >= 2 * rtt * 0.9
        assert result.slow_start_rounds >= 1

    def test_window_persists_on_warm_connection(self):
        transport, model = make_transport()
        transport.transfer("n0", "n1", 64 * 1024, 0.0, rate_bytes_per_sec=187_500)
        first = transport.transfer("n0", "n1", 8192, 0.5, rate_bytes_per_sec=187_500)
        # The warm window covers 8 KB: no slow-start rounds.
        assert first.slow_start_rounds == 0

    def test_idle_connection_restarts(self):
        transport, model = make_transport()
        transport.transfer("n0", "n1", 64 * 1024, 0.0, rate_bytes_per_sec=187_500)
        rtt = model.rtt("n0", "n1")
        idle_gap = transport.rto(rtt) + 10.0
        result = transport.transfer(
            "n0", "n1", 8192, idle_gap + 10.0, rate_bytes_per_sec=187_500
        )
        assert result.restarted
        assert result.slow_start_rounds >= 1
        assert transport.slow_start_restarts == 1

    def test_busy_connection_does_not_restart(self):
        transport, model = make_transport()
        now = 0.0
        restarts_seen = 0
        for _ in range(5):
            result = transport.transfer("n0", "n1", 8192, now, rate_bytes_per_sec=187_500)
            restarts_seen += result.restarted
            now += result.duration + 0.01
        assert restarts_seen == 0

    def test_warm_transfer_faster_than_cold(self):
        transport, _ = make_transport()
        cold = transport.transfer("n0", "n1", 8192, 0.0, rate_bytes_per_sec=187_500)
        grow = transport.transfer(
            "n0", "n1", 64 * 1024, 1.0, rate_bytes_per_sec=187_500
        )
        # Issue before the connection idles past the RTO.
        warm = transport.transfer(
            "n0", "n1", 8192, 1.0 + grow.duration + 0.05, rate_bytes_per_sec=187_500
        )
        assert not warm.restarted
        assert warm.duration < cold.duration


class TestThroughput:
    def test_large_transfer_approaches_link_rate(self):
        transport, model = make_transport()
        nbytes = 10 * 1024 * 1024
        rate = 187_500.0
        result = transport.transfer("n0", "n1", nbytes, 0.0, rate_bytes_per_sec=rate)
        ideal = nbytes / rate
        assert result.duration == pytest.approx(ideal, rel=0.2)

    def test_duration_monotone_in_size(self):
        transport, _ = make_transport()
        small = transport.transfer("n0", "n2", 4096, 0.0, rate_bytes_per_sec=48_000)
        transport2, _ = make_transport()
        big = transport2.transfer("n0", "n2", 64 * 1024, 0.0, rate_bytes_per_sec=48_000)
        assert big.duration > small.duration

    def test_zero_bytes(self):
        transport, _ = make_transport()
        result = transport.transfer("n0", "n1", 0, 0.0, rate_bytes_per_sec=1000.0)
        assert result.duration >= 0.0

    def test_negative_bytes_rejected(self):
        transport, _ = make_transport()
        with pytest.raises(ValueError):
            transport.transfer("n0", "n1", -5, 0.0, rate_bytes_per_sec=1000.0)

    def test_local_transfer_pure_serialization(self):
        transport, _ = make_transport()
        result = transport.transfer("n0", "n0", 1000, 0.0, rate_bytes_per_sec=1000.0)
        assert result.duration == pytest.approx(1.0)


class TestRTO:
    def test_floor(self):
        transport, _ = make_transport()
        assert transport.rto(0.001) == MIN_RTO

    def test_scales_with_rtt(self):
        transport, _ = make_transport()
        assert transport.rto(0.5) == pytest.approx(1.0)


class TestStats:
    def test_warm_fraction(self):
        transport, model = make_transport()
        transport.transfer("n0", "n1", 8192, 0.0, rate_bytes_per_sec=187_500)
        transport.transfer("n0", "n1", 8192, 1000.0, rate_bytes_per_sec=187_500)
        assert transport.transfers == 2
        assert transport.slow_start_restarts == 1
        assert transport.warm_fraction() == pytest.approx(0.5)

    def test_reset(self):
        transport, _ = make_transport()
        transport.transfer("n0", "n1", 8192, 0.0, rate_bytes_per_sec=187_500)
        transport.reset_stats()
        assert transport.transfers == 0
