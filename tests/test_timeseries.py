"""Tests for repro.obs.timeseries: window geometry, counter deltas,
empty-window materialization, deterministic rejection, and bounded
export buffers."""

from __future__ import annotations

import pytest

from repro.obs.timeseries import COUNTER, TimeSeriesBank, TimeSeriesError


def busy(rows):
    return [r for r in rows if r["count"]]


def empty(rows):
    return [r for r in rows if not r["count"]]


# ---------------------------------------------------------------------------
# window geometry: half-open (start, end] windows


def test_boundary_sample_lands_in_closing_window():
    bank = TimeSeriesBank(width=10.0)
    series = bank.series("g")
    # t=10.0 is the boundary that *closes* window 0 (0, 10] — the sample
    # belongs to window 0, not window 1.
    assert series.sample(5.0, 1.0)
    assert series.sample(10.0, 2.0)
    series.advance(20.0)
    rows = bank.drain()
    # advance(20) also materializes (10, 20] as an explicit empty window —
    # the timeline stays contiguous through `now`.
    assert [r["window"] for r in rows] == [0, 1]
    assert rows[0]["start"] == 0.0 and rows[0]["end"] == 10.0
    assert rows[0]["count"] == 2
    assert rows[0]["value"] == 2.0  # gauge default agg = last
    assert rows[1]["count"] == 0


def test_sample_at_epoch_is_pure_baseline():
    bank = TimeSeriesBank(width=10.0)
    series = bank.series("c", kind=COUNTER)
    assert series.sample(0.0, 100.0)   # baseline only, belongs to no window
    assert series.sample(10.0, 130.0)  # window 0 closes with delta 30
    series.advance(30.0)
    assert [(r["window"], r["value"]) for r in busy(bank.drain())] == [(0, 30.0)]


def test_gauge_aggregations():
    for agg, expected in (("last", 3.0), ("max", 9.0), ("min", 1.0), ("sum", 13.0)):
        bank = TimeSeriesBank(width=10.0)
        series = bank.series("g", agg=agg)
        for t, v in ((1.0, 9.0), (2.0, 1.0), (3.0, 3.0)):
            series.sample(t, v)
        series.advance(10.0)
        (row,) = bank.drain()
        assert row["value"] == expected, agg


# ---------------------------------------------------------------------------
# counter semantics


def test_counter_deltas_across_windows():
    bank = TimeSeriesBank(width=10.0)
    series = bank.series("c", kind=COUNTER)
    series.sample(1.0, 5.0)     # first window: in-window growth 20 - 5
    series.sample(9.0, 20.0)
    series.sample(15.0, 50.0)   # second window: delta vs last cumulative
    series.advance(30.0)
    rows = busy(bank.drain())
    assert [(r["window"], r["value"]) for r in rows] == [(0, 15.0), (1, 30.0)]


def test_counter_delta_carries_over_empty_windows():
    bank = TimeSeriesBank(width=10.0)
    series = bank.series("c", kind=COUNTER)
    series.sample(1.0, 4.0)
    series.sample(5.0, 10.0)
    series.sample(45.0, 25.0)   # three empty windows in between
    series.advance(60.0)
    rows = bank.drain()
    empties = empty(rows)
    # windows 1-3 were skipped between samples; 5 trails from advance(60).
    assert [r["window"] for r in empties] == [1, 2, 3, 5]
    assert all(r["value"] == 0.0 for r in empties)  # counters: zero growth
    assert [(r["window"], r["value"]) for r in busy(rows)] == [
        (0, 6.0), (4, 15.0),
    ]


# ---------------------------------------------------------------------------
# empty-window materialization is capped


def test_empty_window_gap_is_capped():
    bank = TimeSeriesBank(width=1.0, max_empty_gap=4)
    series = bank.series("g")
    series.sample(0.5, 1.0)
    series.sample(1000.5, 2.0)  # ~999 empty windows: only 4 materialize
    series.advance(2000.0)      # ~999 more trailing empties: 4 again
    rows = bank.drain()
    assert len(empty(rows)) == 8
    assert series.skipped_windows > 1900
    assert bank.stats()["skipped_windows"] == series.skipped_windows


def test_empty_gauge_windows_have_null_value():
    bank = TimeSeriesBank(width=10.0)
    series = bank.series("g")
    series.sample(5.0, 1.0)
    series.sample(25.0, 2.0)
    series.advance(40.0)
    gaps = empty(bank.drain())
    assert [g["window"] for g in gaps] == [1, 3]
    assert all(g["value"] is None for g in gaps)


# ---------------------------------------------------------------------------
# rejection is deterministic, never reordering


def test_out_of_order_and_closed_window_samples_rejected():
    bank = TimeSeriesBank(width=10.0)
    series = bank.series("g")
    assert series.sample(5.0, 1.0)
    assert not series.sample(4.0, 2.0)      # backwards time
    assert not series.sample(-1.0, 2.0)     # before the epoch
    series.advance(20.0)                     # closes window 0
    assert not series.sample(8.0, 3.0)      # late sample into a closed window
    assert series.rejected == 3
    (row,) = busy(bank.drain())
    assert row["count"] == 1 and row["value"] == 1.0


# ---------------------------------------------------------------------------
# construction and bank behavior


def test_invalid_construction():
    with pytest.raises(TimeSeriesError):
        TimeSeriesBank(width=0.0)
    bank = TimeSeriesBank(width=10.0)
    with pytest.raises(TimeSeriesError):
        bank.series("x", kind="weird")
    with pytest.raises(TimeSeriesError):
        bank.series("x", agg="median")


def test_bank_get_or_create_and_mismatch():
    bank = TimeSeriesBank(width=10.0)
    series = bank.series("node.load", agg="max", node="n01")
    assert bank.series("node.load", agg="max", node="n01") is series
    assert bank.series("node.load", agg="max", node="n02") is not series
    with pytest.raises(TimeSeriesError):
        bank.series("node.load", kind=COUNTER, node="n01")
    with pytest.raises(TimeSeriesError):
        bank.series("node.load", agg="min", node="n01")


def test_bank_rows_carry_labels_and_stats():
    bank = TimeSeriesBank(width=10.0)
    bank.sample("node.load", 5.0, 3.0, agg="max", node="n01")
    bank.sample("ring.nodes", 5.0, 16.0)
    bank.advance(20.0)
    rows = busy(bank.drain())
    by_name = {(r["name"], tuple(sorted(r["labels"].items()))): r for r in rows}
    assert by_name[("node.load", (("node", "n01"),))]["value"] == 3.0
    assert by_name[("ring.nodes", ())]["value"] == 16.0
    stats = bank.stats()
    assert stats["series"] == 2
    assert stats["samples"] == 2
    assert stats["rejected"] == 0


def test_bank_retention_drops_oldest_and_counts():
    bank = TimeSeriesBank(width=1.0, retention=4)
    for window in range(8):
        bank.sample("g", window + 0.5, float(window))
    bank.advance(8.0)
    rows = bank.drain()
    assert len(rows) == 4
    assert bank.dropped_rows == 4
    assert rows[-1]["window"] == 7  # the newest rows survive


# ---------------------------------------------------------------------------
# drain composition: incremental drains == one-shot export


def test_drain_composition_matches_one_shot():
    def feed(bank, collect=None):
        rows = []
        for step in range(50):
            t = float(step)
            bank.sample("g", t + 0.25, float(step % 7), agg="max")
            bank.sample("c", t + 0.5, float(step * 3), kind=COUNTER)
            bank.advance(t + 1.0)
            if collect:
                rows.extend(bank.drain())
        bank.flush()
        if collect:
            rows.extend(bank.drain())
        return rows

    incremental = TimeSeriesBank(width=5.0)
    chunks = feed(incremental, collect=True)

    oneshot = TimeSeriesBank(width=5.0)
    feed(oneshot)
    assert chunks == oneshot.drain()


def test_flush_emits_partial_window():
    bank = TimeSeriesBank(width=10.0)
    series = bank.series("g")
    series.sample(3.0, 7.0)
    assert bank.drain() == []  # window still open
    bank.flush()
    (row,) = bank.drain()
    assert row["window"] == 0 and row["value"] == 7.0
    # flush() is terminal for that window: a re-flush adds nothing.
    bank.flush()
    assert bank.drain() == []
