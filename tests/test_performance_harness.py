"""Unit tests for PerformanceHarness internals (fetch latency composition)."""

import random

import pytest

from repro.analysis.performance import PerformanceHarness, _group_completion
from repro.core.config import D2Config
from repro.core.system import build_deployment
from repro.fs.blocks import BLOCK_SIZE
from repro.sim.network import LatencyModel


@pytest.fixture
def harness():
    deployment = build_deployment("d2", 16, seed=9)
    deployment.bootstrap_volume()
    deployment.apply_fs_ops(deployment.fs.create("/f.dat", size=4 * BLOCK_SIZE))
    latency = LatencyModel.random(deployment.node_names, random.Random(9))
    return deployment, PerformanceHarness(
        deployment,
        latency,
        bandwidth_bps=187_500.0,
        rng=random.Random(9),
    )


class TestFetchLatency:
    def test_buffer_cache_absorbs_repeat(self, harness):
        deployment, h = harness
        key, size = deployment.read_fetches("/f.dat")[1]
        first = h.fetch_latency("alice", key, size, "ident1", now=0.0)
        second = h.fetch_latency("alice", key, size, "ident1", now=1.0)
        assert first > 0.0
        assert second == 0.0

    def test_buffer_cache_expires(self, harness):
        deployment, h = harness
        key, size = deployment.read_fetches("/f.dat")[1]
        h.fetch_latency("alice", key, size, "ident1", now=0.0)
        third = h.fetch_latency("alice", key, size, "ident1", now=100.0)
        assert third > 0.0

    def test_first_fetch_pays_lookup(self, harness):
        deployment, h = harness
        key, size = deployment.read_fetches("/f.dat")[1]
        h.fetch_latency("alice", key, size, "i1", now=0.0)
        assert h.lookup_messages > 0
        assert h.lookups == 1

    def test_cached_range_skips_lookup(self, harness):
        deployment, h = harness
        fetches = deployment.read_fetches("/f.dat")
        h.fetch_latency("alice", fetches[1][0], fetches[1][1], "i1", now=0.0)
        messages_after_first = h.lookup_messages
        # Adjacent block: same owner range, so no routed lookup.
        h.fetch_latency("alice", fetches[2][0], fetches[2][1], "i2", now=0.0)
        assert h.lookup_messages == messages_after_first

    def test_stale_entry_falls_back_to_lookup(self, harness):
        deployment, h = harness
        key, size = deployment.read_fetches("/f.dat")[1]
        client = h.client_for("alice")
        owner = deployment.ring.successor(key)
        lo, hi = deployment.ring.range_of(owner)
        # Poison the cache: the range claims a node that no longer owns it.
        wrong = next(n for n in deployment.node_names if n != owner)
        client.lookup_cache.insert(lo, hi, wrong, now=0.0)
        latency_stale = h.fetch_latency("alice", key, size, "i1", now=0.0)
        # Correctness: the stale entry was detected, invalidated, and a
        # real routed lookup happened; the corrected range is now cached.
        assert client.lookup_cache.stats.stale_hits == 1
        assert h.lookup_messages > 0
        assert client.lookup_cache.probe(key, now=0.1) == owner
        assert latency_stale > 0.0

    def test_server_contention_serializes(self, harness):
        deployment, h = harness
        key, size = deployment.read_fetches("/f.dat")[1]
        # Thirty users request the same block at the same instant: the
        # three replica uplinks must queue, so later arrivals wait for a
        # backlog many transfer-times deep.
        latencies = [
            h.fetch_latency(f"u{i}", key, size, f"i{i}", now=0.0)
            for i in range(30)
        ]
        transfer_time = size / h.bandwidth
        assert max(latencies) > min(latencies) + 3 * transfer_time

    def test_warm_connection_faster(self, harness):
        deployment, h = harness
        key, size = deployment.read_fetches("/f.dat")[1]
        cold = h.fetch_latency("alice", key, size, "i1", now=0.0)
        # Immediately fetch another block from the same replica group.
        key2, size2 = deployment.read_fetches("/f.dat")[2]
        warm = h.fetch_latency("alice", key2, size2, "i2", now=cold + 0.01)
        assert warm <= cold


class TestWarmAccess:
    def test_warm_populates_caches_without_messages(self, harness):
        deployment, h = harness
        key, size = deployment.read_fetches("/f.dat")[1]
        h.warm_access("alice", key, "i1", now=0.0)
        assert h.lookup_messages == 0
        client = h.client_for("alice")
        assert client.lookup_cache.probe(key, now=1.0) is not None


class TestGroupCompletion:
    def config(self, cap=15):
        return D2Config(max_concurrent_transfers=cap)

    def test_seq_sums(self):
        assert _group_completion([1.0, 2.0, 3.0], "seq", self.config()) == 6.0

    def test_para_takes_max_under_cap(self):
        assert _group_completion([1.0, 2.0, 3.0], "para", self.config()) == 3.0

    def test_para_waves_beyond_cap(self):
        latencies = [1.0] * 20
        assert _group_completion(latencies, "para", self.config(cap=15)) == 2.0

    def test_empty(self):
        assert _group_completion([], "seq", self.config()) == 0.0
