"""Integration tests for the Deployment facade."""

import pytest

from repro.core.config import D2Config
from repro.core.system import SYSTEMS, build_deployment
from repro.fs.blocks import BLOCK_SIZE
from repro.workloads.trace import READ, CREATE, TraceRecord


class TestConstruction:
    def test_all_systems_build(self):
        for system in SYSTEMS:
            d = build_deployment(system, 8, seed=1)
            assert len(d.ring) == 8

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            build_deployment("pastry", 8)

    def test_balancer_only_for_balancing_systems(self):
        assert build_deployment("d2", 8).balancer is not None
        assert build_deployment("traditional+merc", 8).balancer is not None
        assert build_deployment("traditional", 8).balancer is None
        assert build_deployment("traditional-file", 8).balancer is None

    def test_balancing_disabled_by_config(self):
        config = D2Config(active_load_balancing=False)
        assert build_deployment("d2", 8, config=config).balancer is None


class TestVolumeLifecycle:
    def test_bootstrap_and_create(self, d2_deployment):
        d2_deployment.bootstrap_volume()
        d2_deployment.apply_fs_ops(d2_deployment.fs.makedirs("/home/alice"))
        d2_deployment.apply_fs_ops(
            d2_deployment.fs.create("/home/alice/f.dat", size=3 * BLOCK_SIZE)
        )
        assert len(d2_deployment.store.directory) > 3

    def test_read_fetches_locality(self, d2_deployment):
        """The headline property: one file's fetches hit <= r nodes."""
        d2_deployment.bootstrap_volume()
        d2_deployment.apply_fs_ops(d2_deployment.fs.makedirs("/home/alice"))
        d2_deployment.apply_fs_ops(
            d2_deployment.fs.create("/home/alice/f.dat", size=10 * BLOCK_SIZE)
        )
        fetches = d2_deployment.read_fetches("/home/alice/f.dat")
        owners = {d2_deployment.ring.successor(key) for key, _ in fetches}
        assert len(owners) <= d2_deployment.config.replica_count

    def test_traditional_read_scatters(self):
        d = build_deployment("traditional", 24, seed=5)
        d.bootstrap_volume()
        d.apply_fs_ops(d.fs.makedirs("/home/alice"))
        d.apply_fs_ops(d.fs.create("/home/alice/f.dat", size=10 * BLOCK_SIZE))
        fetches = d.read_fetches("/home/alice/f.dat")
        owners = {d.ring.successor(key) for key, _ in fetches}
        assert len(owners) > 3

    def test_traditional_file_single_owner(self):
        d = build_deployment("traditional-file", 24, seed=5)
        d.bootstrap_volume()
        d.apply_fs_ops(d.fs.create("/f.dat", size=10 * BLOCK_SIZE))
        fetches = d.read_fetches("/f.dat")
        owners = {d.ring.successor(key) for key, _ in fetches}
        assert len(owners) == 1


class TestBatchedReads:
    def _populate(self, d):
        d.bootstrap_volume()
        d.apply_fs_ops(d.fs.makedirs("/home/alice"))
        d.apply_fs_ops(d.fs.create("/home/alice/big.dat", size=10 * BLOCK_SIZE))
        d.apply_fs_ops(d.fs.create("/home/alice/tiny.dat", size=100))

    def test_many_matches_singles(self, d2_deployment):
        """read_fetches_many is exactly [read_fetches(*r) for r in reqs]."""
        self._populate(d2_deployment)
        requests = [
            ("/home/alice/big.dat", 0, None),
            ("/home/alice/big.dat", BLOCK_SIZE * 3, BLOCK_SIZE),
            ("/home/alice/tiny.dat", 0, None),
            ("/home/alice/big.dat", 0, 1),
        ]
        batched = d2_deployment.read_fetches_many(requests)
        singles = [
            d2_deployment.read_fetches(path, offset, length)
            for path, offset, length in requests
        ]
        assert batched == singles

    def test_many_matches_singles_all_systems(self):
        for system in ("d2", "traditional", "traditional-file"):
            d = build_deployment(system, 16, seed=3)
            self._populate(d)
            requests = [("/home/alice/big.dat", 0, None)] * 2
            assert d.read_fetches_many(requests) == [
                d.read_fetches("/home/alice/big.dat") for _ in range(2)
            ]

    def test_interned_maker_survives_rename(self, d2_deployment):
        """Keys depend only on (slot_path, overflow), which rename
        preserves — so fetches are identical before and after."""
        self._populate(d2_deployment)
        before = d2_deployment.read_fetches("/home/alice/big.dat")
        d2_deployment.apply_fs_ops(
            d2_deployment.fs.rename("/home/alice/big.dat", "/home/alice/moved.dat")
        )
        assert d2_deployment.read_fetches("/home/alice/moved.dat") == before

    def test_empty_batch(self, d2_deployment):
        self._populate(d2_deployment)
        assert d2_deployment.read_fetches_many([]) == []


class TestReplay:
    def test_read_record(self, d2_deployment, tiny_trace):
        d2_deployment.load_initial_image(tiny_trace)
        path, size = tiny_trace.initial_files[0]
        outcome = d2_deployment.replay_record(
            TraceRecord(0.0, "u", READ, path, offset=0, length=size)
        )
        assert not outcome.skipped
        assert outcome.fetches
        assert outcome.files == 1

    def test_missing_path_skipped(self, d2_deployment):
        d2_deployment.bootstrap_volume()
        outcome = d2_deployment.replay_record(TraceRecord(0.0, "u", READ, "/ghost"))
        assert outcome.skipped

    def test_create_record_stores_blocks(self, d2_deployment):
        d2_deployment.bootstrap_volume()
        outcome = d2_deployment.replay_record(
            TraceRecord(0.0, "u", CREATE, "/new.dat", size=2 * BLOCK_SIZE)
        )
        assert len(outcome.stores) == 3  # 2 data + inode
        assert not outcome.skipped

    def test_full_trace_replay(self, d2_deployment, tiny_trace):
        d2_deployment.load_initial_image(tiny_trace)
        d2_deployment.stabilize()
        skipped = 0
        for record in tiny_trace.records:
            d2_deployment.advance_to(record.time)
            skipped += d2_deployment.replay_record(record).skipped
        assert skipped / max(len(tiny_trace), 1) < 0.06


class TestBalancingIntegration:
    def test_stabilize_balances(self, tiny_trace):
        d = build_deployment("d2", 24, seed=2)
        d.load_initial_image(tiny_trace)
        from repro.dht.load_balance import normalized_std_dev

        before = normalized_std_dev(list(d.store.primary_loads().values()))
        rounds = d.stabilize()
        after = normalized_std_dev(list(d.store.primary_loads().values()))
        assert rounds > 0
        assert after < before

    def test_stabilize_noop_without_balancer(self, tiny_trace):
        d = build_deployment("traditional", 24, seed=2)
        d.load_initial_image(tiny_trace)
        assert d.stabilize() == 0

    def test_periodic_balancing_runs(self, tiny_trace):
        d = build_deployment("d2", 24, seed=2)
        d.load_initial_image(tiny_trace)
        d.start_periodic_balancing()
        d.advance_to(d.config.probe_interval * 3)
        assert d.balancer.stats.probes > 0
        d.stop_periodic_balancing()
        probes = d.balancer.stats.probes
        d.advance_to(d.config.probe_interval * 10)
        assert d.balancer.stats.probes == probes

    def test_describe(self, d2_deployment):
        d2_deployment.bootstrap_volume()
        info = d2_deployment.describe()
        assert info["system"] == "d2"
        assert info["nodes"] == 24

    def test_lookup_cache_per_client(self, d2_deployment):
        a = d2_deployment.lookup_cache_for("alice")
        b = d2_deployment.lookup_cache_for("bob")
        assert a is not b
        assert d2_deployment.lookup_cache_for("alice") is a
