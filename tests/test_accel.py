"""Tests for the composed lookup-acceleration tiers (cache/learned/route)."""

import random

import pytest

from repro.core.accel import ACCEL_MODES, LookupAccelerator
from repro.core.lookup_cache import CacheBudget
from repro.core.system import build_deployment
from repro.dht.consistent_hashing import random_node_ids
from repro.dht.keyspace import KEY_SPACE
from repro.dht.ring import Ring
from repro.dht.routing import route
from repro.obs.metrics import MetricsRegistry


def build_ring(n, seed=0):
    ring = Ring()
    rng = random.Random(seed)
    for i, node_id in enumerate(random_node_ids(n, rng)):
        ring.join(f"n{i}", node_id)
    return ring, rng


class TestModes:
    def test_unknown_mode_rejected(self):
        ring, _ = build_ring(8)
        with pytest.raises(ValueError):
            LookupAccelerator(ring, mode="turbo")

    def test_mode_wiring(self):
        ring, _ = build_ring(8)
        for mode in ACCEL_MODES:
            accel = LookupAccelerator(ring, mode=mode)
            assert accel.use_cache == (mode != "none")
            assert accel.adaptive == (mode in ("cache+adaptive", "all"))
            assert (accel.learned is not None) == (
                mode in ("cache+learned", "all")
            )
            assert (accel.budget is not None) == accel.adaptive

    def test_none_mode_is_plain_routing(self):
        ring, rng = build_ring(32)
        accel = LookupAccelerator(ring, mode="none")
        for _ in range(50):
            key = rng.randrange(KEY_SPACE)
            outcome = accel.lookup("c1", "n0", key)
            reference = route(ring, "n0", key)
            assert outcome.tier == "route"
            assert outcome.owner == reference.owner
            assert outcome.messages == reference.messages
        assert not accel.caches  # no cache objects materialize


class TestCacheTier:
    def test_repeat_lookup_hits_for_free(self):
        ring, rng = build_ring(32)
        accel = LookupAccelerator(ring, mode="cache")
        key = rng.randrange(KEY_SPACE)
        first = accel.lookup("c1", "n0", key)
        assert first.tier == "route" and first.messages > 0
        second = accel.lookup("c1", "n0", key)
        assert second.tier == "cache" and second.messages == 0
        assert second.owner == first.owner

    def test_caches_are_per_client(self):
        ring, rng = build_ring(32)
        accel = LookupAccelerator(ring, mode="cache")
        key = rng.randrange(KEY_SPACE)
        accel.lookup("c1", "n0", key)
        other = accel.lookup("c2", "n0", key)
        assert other.tier == "route"  # c2's cache was cold
        assert set(accel.caches) == {"c1", "c2"}

    def test_stale_entry_bills_extra_probe(self):
        ring, rng = build_ring(32, seed=2)
        accel = LookupAccelerator(ring, mode="cache")
        key = rng.randrange(KEY_SPACE)
        accel.lookup("c1", "n0", key)
        owner = ring.successor(key)
        # Move the owner elsewhere on the ring: the cached range now names
        # a node that no longer owns the key, but the node is still alive.
        ring.change_position(owner, (ring.position_of(owner) + 7) % KEY_SPACE)
        cache = accel.caches["c1"]
        cache._ring = None  # disable the membership check to expose staleness
        outcome = accel.lookup("c1", "n0", key)
        if outcome.stale:
            reference = route(ring, "n0", key)
            assert outcome.messages == reference.messages + 1
            assert outcome.owner == reference.owner

    def test_resolution_feeds_cache_back(self):
        ring, rng = build_ring(32)
        accel = LookupAccelerator(ring, mode="cache")
        key = rng.randrange(KEY_SPACE)
        accel.lookup("c1", "n0", key)
        assert accel.occupancy() == 1


class TestLearnedTier:
    def test_learned_hits_after_training(self):
        ring, rng = build_ring(64, seed=3)
        accel = LookupAccelerator(
            ring, mode="cache+learned", static_capacity=2,
            learned_min_observations=32, learned_segments=8,
        )
        keys = [rng.randrange(KEY_SPACE) for _ in range(256)]
        for key in keys:          # trains via routed fallbacks
            accel.lookup("c1", "n0", key)
        fresh = [rng.randrange(KEY_SPACE) for _ in range(100)]
        tiers = [accel.lookup("c1", "n0", key).tier for key in fresh]
        assert tiers.count("learned") > 50
        for key in fresh:
            assert ring.successor(key) == accel.lookup("c2", "n0", key).owner

    def test_owner_always_correct_in_all_mode(self):
        ring, rng = build_ring(64, seed=3)
        accel = LookupAccelerator(ring, mode="all",
                                  learned_min_observations=32)
        for _ in range(300):
            key = rng.randrange(KEY_SPACE)
            assert accel.lookup("c1", "n0", key).owner == ring.successor(key)


class TestAdaptiveTier:
    def test_adaptive_clients_share_one_budget(self):
        ring, rng = build_ring(32)
        accel = LookupAccelerator(ring, mode="cache+adaptive",
                                  budget_entries=64, min_capacity=8)
        for client in ("c1", "c2", "c3"):
            accel.lookup(client, "n0", rng.randrange(KEY_SPACE))
        assert isinstance(accel.budget, CacheBudget)
        assert accel.budget.granted == 3 * 8
        for cache in accel.caches.values():
            assert cache.capacity == 8
            assert cache._sizer.budget is accel.budget

    def test_static_modes_have_no_sizer(self):
        ring, rng = build_ring(32)
        accel = LookupAccelerator(ring, mode="cache", static_capacity=4)
        accel.lookup("c1", "n0", rng.randrange(KEY_SPACE))
        cache = accel.caches["c1"]
        assert cache.capacity == 4
        assert cache._sizer is None


class TestMetricsAndStats:
    def test_counters_flow_to_registry(self):
        ring, rng = build_ring(32)
        registry = MetricsRegistry()
        accel = LookupAccelerator(ring, mode="cache", registry=registry)
        key = rng.randrange(KEY_SPACE)
        accel.lookup("c1", "n0", key)
        accel.lookup("c1", "n0", key)
        assert registry.counter("accel.lookups").value == 2
        assert registry.counter("lookup.hits").value == 1
        assert registry.counter("accel.messages").value > 0

    def test_stats_shape(self):
        ring, rng = build_ring(16)
        accel = LookupAccelerator(ring, mode="all")
        accel.lookup("c1", "n0", rng.randrange(KEY_SPACE))
        stats = accel.stats()
        for field in ("mode", "clients", "occupancy", "lookups", "messages",
                      "stale_faults", "budget_granted", "learned"):
            assert field in stats
        assert stats["clients"] == 1
        assert stats["learned"] is not None


class TestDeploymentIntegration:
    def test_enable_acceleration_idempotent_per_mode(self):
        deployment = build_deployment("d2", 8, seed=1)
        accel = deployment.enable_acceleration("cache")
        assert deployment.enable_acceleration("cache") is accel
        with pytest.raises(ValueError):
            deployment.enable_acceleration("all")

    def test_deployment_defaults_flow_in(self):
        deployment = build_deployment("d2", 8, seed=1)
        accel = deployment.enable_acceleration("cache")
        assert accel.ttl == deployment.config.lookup_cache_ttl
        assert accel.seed == deployment.seed
        assert accel.ring is deployment.ring

    def test_snapshot_exposes_cache_gauges(self):
        deployment = build_deployment("d2", 8, seed=1)
        deployment.bootstrap_volume()
        accel = deployment.enable_acceleration("cache")
        key = deployment.ring.positions()[0]
        accel.lookup("c1", deployment.node_names[0], key)
        accel.lookup("c1", deployment.node_names[0], key)
        gauges = deployment.observability_snapshot()["gauges"]
        assert gauges["lookup.caches"] >= 1
        assert 0.0 <= gauges["lookup.hit_ratio"] <= 1.0
