"""Unit tests for the ablation drivers at tiny scale."""

import pytest

from repro.experiments.ablations import (
    run_cache_ttl_ablation,
    run_pointer_ablation,
    run_replica_ablation,
    run_sampling_ablation,
    run_threshold_ablation,
)

TINY = dict(n_nodes=10, files=60, file_size=32_000, seed=3)


class TestPointerAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_pointer_ablation(churn_rounds=1, **TINY)

    def test_both_variants_present(self, rows):
        assert {row["pointers"] for row in rows} == {"on", "off"}

    def test_same_data_written(self, rows):
        written = {row["written_mb"] for row in rows}
        assert len(written) == 1

    def test_pointers_reduce_migration(self, rows):
        by = {row["pointers"]: row for row in rows}
        assert by["on"]["migrated_mb"] <= by["off"]["migrated_mb"]

    def test_same_final_balance(self, rows):
        by = {row["pointers"]: row for row in rows}
        assert by["on"]["final_nsd"] == pytest.approx(by["off"]["final_nsd"])
        assert by["on"]["moves"] == by["off"]["moves"]


class TestThresholdAblation:
    def test_bounds_respected(self):
        rows = run_threshold_ablation(thresholds=(2.5, 6.0), **TINY)
        for row in rows:
            assert row["max_over_mean"] <= row["threshold"] + 0.5
            assert row["moves"] >= 0


class TestCacheTtlAblation:
    def test_short_ttl_costs_more(self):
        rows = run_cache_ttl_ablation(
            ttls=(30.0, 4500.0), n_nodes=16, accesses=800, seed=3
        )
        by = {row["ttl_s"]: row for row in rows}
        assert by[30.0]["miss_rate"] > by[4500.0]["miss_rate"]
        assert by[30.0]["total_lookup_cost"] >= by[4500.0]["total_lookup_cost"]


class TestReplicaAblation:
    def test_more_replicas_never_hurt(self):
        rows = run_replica_ablation(
            replica_counts=(2, 4), n_nodes=20, users=2, days=0.5, seed=3
        )
        by = {row["replicas"]: row for row in rows}
        for system in ("d2", "traditional"):
            assert by[4][f"unavail_{system}"] <= by[2][f"unavail_{system}"]

    def test_d2_at_most_traditional(self):
        rows = run_replica_ablation(
            replica_counts=(3,), n_nodes=20, users=2, days=0.5, seed=3
        )
        row = rows[0]
        assert row["unavail_d2"] <= row["unavail_traditional"]


class TestSamplingAblation:
    def test_both_strategies_converge(self):
        rows = run_sampling_ablation(**TINY)
        assert {row["sampling"] for row in rows} == {"membership", "random-walk"}
        for row in rows:
            assert row["max_over_mean"] <= 4.5
