"""Tests for the availability analysis (replica checker + task evaluation)."""

import random

import pytest

from repro.analysis.availability import (
    ReplicaAvailability,
    evaluate_tasks,
    matching_failure_trace,
    run_availability_replay,
    run_availability_trial,
)
from repro.core.system import build_deployment
from repro.fs.blocks import BLOCK_SIZE
from repro.sim.failures import FailureEvent, FailureTrace, FailureTraceConfig
from repro.workloads.harvard import HarvardConfig, generate_harvard


def deployment_with_file(n_nodes=12, seed=3):
    d = build_deployment("d2", n_nodes, seed=seed)
    d.bootstrap_volume()
    d.apply_fs_ops(d.fs.create("/f.dat", size=2 * BLOCK_SIZE))
    return d


class TestReplicaAvailability:
    def test_available_when_any_replica_up(self):
        d = deployment_with_file()
        key = d.read_fetches("/f.dat")[1][0]
        group = d.ring.successors(key, d.config.replica_count)
        events = [FailureEvent(10.0, group[0], up=False)]
        failures = FailureTrace(d.node_names, events, duration=1000.0)
        checker = ReplicaAvailability(d, failures, regeneration=False)
        assert checker.key_available(key, 50.0)

    def test_unavailable_when_group_down(self):
        d = deployment_with_file()
        key = d.read_fetches("/f.dat")[1][0]
        group = d.ring.successors(key, d.config.replica_count)
        events = [FailureEvent(10.0, name, up=False) for name in group]
        failures = FailureTrace(d.node_names, events, duration=1000.0)
        checker = ReplicaAvailability(d, failures, regeneration=False)
        assert not checker.key_available(key, 50.0)
        assert checker.misses == 1

    def test_regeneration_restores_after_delay(self):
        d = deployment_with_file()
        key = d.read_fetches("/f.dat")[1][0]
        group = d.ring.successors(key, d.config.replica_count)
        events = [FailureEvent(10.0, name, up=False) for name in group]
        failures = FailureTrace(d.node_names, events, duration=100_000.0)
        checker = ReplicaAvailability(
            d, failures, regeneration=True, regeneration_delay_override=3600.0
        )
        assert not checker.key_available(key, 100.0)
        assert checker.key_available(key, 10.0 + 3601.0)

    def test_regeneration_needs_live_extended_successor(self):
        d = deployment_with_file(n_nodes=5)
        key = d.read_fetches("/f.dat")[1][0]
        # Take down every node: regeneration has nowhere to go.
        events = [FailureEvent(10.0, name, up=False) for name in d.node_names]
        failures = FailureTrace(d.node_names, events, duration=100_000.0)
        checker = ReplicaAvailability(
            d, failures, regeneration=True, regeneration_delay_override=1.0
        )
        assert not checker.key_available(key, 5_000.0)

    def test_recovery_restores_availability(self):
        d = deployment_with_file()
        key = d.read_fetches("/f.dat")[1][0]
        group = d.ring.successors(key, d.config.replica_count)
        events = [FailureEvent(10.0, name, up=False) for name in group]
        events += [FailureEvent(500.0, group[0], up=True)]
        failures = FailureTrace(d.node_names, events, duration=1000.0)
        checker = ReplicaAvailability(d, failures, regeneration=False)
        assert checker.key_available(key, 600.0)

    def test_derived_regeneration_delay_scales_with_data(self):
        d = deployment_with_file()
        failures = FailureTrace(d.node_names, [], duration=1000.0)
        checker = ReplicaAvailability(d, failures, migration_bandwidth_bps=100.0)
        delay_small = checker._regeneration_delay()
        d.apply_fs_ops(d.fs.create("/big.dat", size=50 * BLOCK_SIZE))
        assert checker._regeneration_delay() > delay_small


class TestTrialIntegration:
    @pytest.fixture(scope="class")
    def setup(self):
        trace = generate_harvard(HarvardConfig(users=3, days=0.5, seed=4))
        config = FailureTraceConfig(
            duration=0.5 * 86400,
            mttf=86400.0,
            mttr=4 * 3600.0,
            correlated_events=2,
            correlated_fraction=0.3,
            correlated_repair=2 * 3600.0,
        )
        failures = matching_failure_trace(16, random.Random(1), config)
        return trace, failures

    def test_replay_produces_log(self, setup):
        trace, failures = setup
        log = run_availability_replay(trace, failures, "d2", trial=0)
        assert log.ok  # some access records evaluated
        assert log.system == "d2"

    def test_one_log_many_inters(self, setup):
        trace, failures = setup
        log = run_availability_replay(trace, failures, "traditional", trial=0)
        r1 = evaluate_tasks(trace, log, inter=1.0)
        r60 = evaluate_tasks(trace, log, inter=60.0)
        assert r1.tasks >= r60.tasks
        assert r1.mean_blocks_per_task <= r60.mean_blocks_per_task

    def test_trial_consistency(self, setup):
        trace, failures = setup
        result = run_availability_trial(trace, failures, "d2", inter=5.0)
        assert 0.0 <= result.unavailability <= 1.0
        assert result.tasks == sum(result.per_user_tasks.values())
        assert result.failed_tasks == sum(result.per_user_failed.values())

    def test_d2_spreads_over_fewer_nodes(self, setup):
        trace, failures = setup
        d2 = run_availability_trial(trace, failures, "d2", inter=5.0)
        trad = run_availability_trial(trace, failures, "traditional", inter=5.0)
        assert d2.mean_nodes_per_task < trad.mean_nodes_per_task
        # Same workload -> same objects per task.
        assert d2.mean_blocks_per_task == pytest.approx(
            trad.mean_blocks_per_task, rel=0.05
        )

    def test_ranked_per_user(self, setup):
        trace, failures = setup
        result = run_availability_trial(trace, failures, "traditional", inter=5.0)
        ranked = result.ranked_user_unavailability()
        values = [v for _, v in ranked]
        assert values == sorted(values, reverse=True)
