"""Tests for the repro.lint static-analysis suite.

Every rule family gets fixture snippets that *must* trigger and snippets
that *must not* (false-positive guards), plus baseline round-trips, the
JSON report schema, and the exit-code contract (0 clean / 1 violations /
2 tool error).
"""

from __future__ import annotations

import json
import os
import textwrap

import pytest

from repro.lint.baseline import Baseline, fingerprint
from repro.lint.cli import EXIT_CLEAN, EXIT_TOOL_ERROR, EXIT_VIOLATIONS, main
from repro.lint.rules import build_context, run_rules
from repro.lint.walker import LintToolError, parse_module

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                        "src", "repro")


def lint(tmp_path, source, name="fixture.py", companions=()):
    """Lint one dedented fixture (plus optional companion files)."""
    modules = []
    for fname, fsource in list(companions) + [(name, source)]:
        path = tmp_path / fname
        path.write_text(textwrap.dedent(fsource))
        modules.append(parse_module(str(path)))
    findings = run_rules(modules, context=build_context(modules))
    return [f for f in findings if f.path.endswith(name)]


def rules_of(findings):
    return sorted({f.rule for f in findings})


# ---------------------------------------------------------------------------
# DET001 — wall clock


def test_det001_flags_wall_clock(tmp_path):
    findings = lint(tmp_path, """
        import time
        from datetime import datetime

        def run():
            a = time.time()
            b = time.monotonic()
            c = datetime.now()
            return a, b, c
    """)
    assert [f.rule for f in findings] == ["DET001", "DET001", "DET001"]
    assert findings[0].line == 6  # fixture has a leading blank line


def test_det001_allows_perf_counter_and_sim_time(tmp_path):
    findings = lint(tmp_path, """
        import time

        def run(sim):
            started = time.perf_counter()
            now = sim.now
            return time.perf_counter() - started, now
    """)
    assert findings == []


def test_det001_resolves_import_aliases(tmp_path):
    findings = lint(tmp_path, """
        import time as clock
        from time import monotonic as mono

        def run():
            return clock.time() + mono()
    """)
    assert [f.rule for f in findings] == ["DET001", "DET001"]


def test_det001_ignores_unrelated_attributes(tmp_path):
    # A non-module object that happens to be named `time` must not resolve.
    findings = lint(tmp_path, """
        def run(metrics):
            return metrics.time()
    """)
    assert findings == []


def test_det001_inline_suppression(tmp_path):
    findings = lint(tmp_path, """
        import time

        def run():
            return time.time()  # lint: allow=DET001
    """)
    assert findings == []


# ---------------------------------------------------------------------------
# DET002 — unseeded / module-global RNG


def test_det002_flags_global_rng_and_entropy(tmp_path):
    findings = lint(tmp_path, """
        import os
        import random
        import uuid

        def run():
            a = random.random()
            b = random.Random()
            c = os.urandom(8)
            d = uuid.uuid4()
            random.shuffle([1, 2])
            return a, b, c, d
    """)
    assert [f.rule for f in findings] == ["DET002"] * 5


def test_det002_allows_seeded_rng(tmp_path):
    findings = lint(tmp_path, """
        import random

        def run(seed):
            rng = random.Random(seed)
            other = random.Random(0)
            return rng.random() + other.expovariate(1.0)
    """)
    assert findings == []


def test_det002_flags_from_import(tmp_path):
    findings = lint(tmp_path, """
        from random import Random, randint

        def run():
            return Random(), randint(0, 3)
    """)
    assert [f.rule for f in findings] == ["DET002", "DET002"]


# ---------------------------------------------------------------------------
# DET003 — unordered iteration


def test_det003_flags_set_iteration(tmp_path):
    findings = lint(tmp_path, """
        def run(items):
            seen = set(items)
            out = []
            for item in seen:
                out.append(item)
            for item in {1, 2, 3}:
                out.append(item)
            return out, [x for x in set(items)], list(frozenset(items))
    """)
    assert [f.rule for f in findings] == ["DET003"] * 4


def test_det003_allows_sorted_and_order_free(tmp_path):
    findings = lint(tmp_path, """
        def run(items):
            seen = set(items)
            total = sum(seen)           # order-free consumer
            top = max(x for x in seen)  # order-free consumer
            bound = len(seen)
            ordered = sorted(seen)      # iterating sorted(), not the set
            for item in sorted(set(items)):
                total += item
            return total, top, bound, ordered, 3 in seen
    """)
    assert findings == []


def test_det003_membership_and_mutation_only_is_fine(tmp_path):
    findings = lint(tmp_path, """
        def run(ops):
            done = set()
            for op in ops:
                if op in done:
                    continue
                done.add(op)
            return len(done)
    """)
    assert findings == []


def test_det003_set_returning_annotation_crosses_modules(tmp_path):
    companions = [("helpers.py", """
        from typing import Set

        def up_nodes(names) -> Set[str]:
            return set(names)
    """)]
    findings = lint(tmp_path, """
        from helpers import up_nodes

        def run(names):
            return [n for n in up_nodes(names)]
    """, companions=companions)
    assert rules_of(findings) == ["DET003"]
    # ... and sorted() absorbs it
    clean = lint(tmp_path, """
        from helpers import up_nodes

        def run(names):
            return sorted(up_nodes(names))
    """, companions=companions)
    assert clean == []


def test_det003_reassigned_name_is_not_flagged(tmp_path):
    findings = lint(tmp_path, """
        def run(items, flag):
            values = set(items)
            if flag:
                values = sorted(items)
            return [v for v in values]
    """)
    assert findings == []


def test_det003_self_attribute_set(tmp_path):
    findings = lint(tmp_path, """
        class Tracker:
            def __init__(self):
                self.pending = set()

            def drain(self):
                return [p for p in self.pending]

            def drain_sorted(self):
                return sorted(self.pending)
    """)
    assert [f.rule for f in findings] == ["DET003"]


# ---------------------------------------------------------------------------
# OBS001 — span / event contracts


def test_obs001_span_outside_with(tmp_path):
    findings = lint(tmp_path, """
        def run(tracer, now):
            span = tracer.span("fetch", now)
            return span
    """)
    assert [f.rule for f in findings] == ["OBS001"]


def test_obs001_span_as_context_manager_ok(tmp_path):
    findings = lint(tmp_path, """
        def run(tracer, stack, now):
            with tracer.span("fetch", now) as span:
                span.annotate(blocks=3)
            managed = stack.enter_context(tracer.span("flush", now))
            return managed
    """)
    assert findings == []


def test_obs001_unregistered_event_kind(tmp_path):
    findings = lint(tmp_path, """
        def run(tracer, now):
            tracer.emit("totally.unknown", now, key=1)
    """)
    assert [f.rule for f in findings] == ["OBS001"]
    assert "totally.unknown" in findings[0].message


def test_obs001_registered_kinds_pass(tmp_path):
    findings = lint(tmp_path, """
        from repro.obs.events import register_kind

        MY_KIND = register_kind("fixture.kind")

        def run(tracer, now):
            tracer.emit(MY_KIND, now)
            tracer.emit("fixture.kind", now)
    """)
    assert findings == []


def test_obs001_core_vocabulary_resolves_across_modules(tmp_path):
    # Constants imported from a scanned events module resolve to their
    # literal values; registered ones pass, unknown ones fail.
    companions = [("evmod.py", """
        GOOD = "lookup.hit"

        def register_kind(kind):
            return kind

        REGISTERED = register_kind("lookup.hit")
    """)]
    findings = lint(tmp_path, """
        from evmod import REGISTERED

        def run(tracer, now):
            tracer.emit(REGISTERED, now)
    """, companions=companions)
    assert findings == []


def test_obs001_skips_non_tracer_emit(tmp_path):
    findings = lint(tmp_path, """
        def run(signal_bus, now):
            signal_bus.emit("not.an.event", now)
    """)
    assert findings == []


# ---------------------------------------------------------------------------
# OBS002 — sim-time-only time-series samples


def test_obs002_flags_perf_counter_samples(tmp_path):
    findings = lint(tmp_path, """
        import time

        def run(series, bank):
            series.sample(time.perf_counter(), 1.0)
            bank.sample("lookup.hit_ratio", time.perf_counter_ns(), 0.5)
            series.record(time.process_time(), 2.0)
    """)
    assert [f.rule for f in findings] == ["OBS002", "OBS002", "OBS002"]
    assert "time.perf_counter()" in findings[0].message


def test_obs002_flags_wall_clock_samples_too(tmp_path):
    findings = lint(tmp_path, """
        import time

        def run(monitor_series):
            monitor_series.sample(time.time(), 1.0)
    """)
    # DET001 also fires on the raw time.time() read; OBS002 adds the
    # series-specific diagnostic on top.
    assert rules_of(findings) == ["DET001", "OBS002"]


def test_obs002_allows_sim_time_and_measured_fields(tmp_path):
    findings = lint(tmp_path, """
        import time

        def run(sim, series, bank):
            series.sample(sim.now, 1.0)
            bank.sample("repair.backlog", sim.now, value=3.0)
            wall = time.perf_counter()  # measured field, not a sample
            return wall
    """)
    assert findings == []


def test_obs002_skips_non_series_receivers(tmp_path):
    findings = lint(tmp_path, """
        import time

        def run(profiler):
            profiler.sample(time.perf_counter())
    """)
    assert findings == []


# ---------------------------------------------------------------------------
# KEY001 — hand-packed keys


def test_key001_flags_raw_packers_and_shifts(tmp_path):
    findings = lint(tmp_path, """
        import hashlib
        from repro.dht.keyspace import hash_to_key, key_from_bytes

        BLOCK_NUMBER_BYTES = 8

        def bad_keys(name, prefix, block, version):
            a = hash_to_key(name.encode())
            b = key_from_bytes(b"x" * 64)
            c = prefix | (block << 32) | version
            d = prefix | (block << (8 * BLOCK_NUMBER_BYTES))
            e = int.from_bytes(hashlib.sha512(name.encode()).digest(), "big")
            return a, b, c, d, e
    """)
    assert [f.rule for f in findings] == ["KEY001"] * 5


def test_key001_allows_sanctioned_api_and_size_constants(tmp_path):
    findings = lint(tmp_path, """
        import hashlib
        from repro.core.keys import compose_block_key, encode_path_key
        from repro.dht.consistent_hashing import hashed_key

        MEMO_MAX = 1 << 17
        BIG = 8 << 20

        def good_keys(volume, slots, block, version, name):
            prefix = encode_path_key(volume, slots)
            k1 = compose_block_key(prefix, block, version)
            k2 = hashed_key(name)
            sig = int.from_bytes(hashlib.sha256(name.encode()).digest()[:20], "big")
            return k1, k2, sig, MEMO_MAX, BIG
    """)
    assert findings == []


# ---------------------------------------------------------------------------
# whole-tree invariant: the shipped source stays clean


def test_repo_source_is_lint_clean():
    rc = main([REPO_SRC, "--no-baseline", "--quiet"])
    assert rc == EXIT_CLEAN


# ---------------------------------------------------------------------------
# baseline round-trip


VIOLATING = """
import time

def run():
    return time.time()
"""

CLEAN = """
import time

def run():
    return time.perf_counter()
"""


def test_baseline_add_and_expire_round_trip(tmp_path, capsys):
    target = tmp_path / "mod.py"
    base = tmp_path / "baseline.json"
    target.write_text(textwrap.dedent(VIOLATING))

    # 1. violation fails without a baseline
    assert main([str(target), "--baseline", str(base)]) == EXIT_VIOLATIONS
    # 2. grandfather it
    assert main([str(target), "--baseline", str(base), "--update-baseline"]) == EXIT_CLEAN
    loaded = Baseline.load(str(base))
    assert len(loaded) == 1
    # 3. suppressed now, even under --strict
    assert main([str(target), "--baseline", str(base), "--strict"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    assert "[baselined]" in out
    # 4. fix the code: entry goes stale — strict fails, default run warns
    target.write_text(textwrap.dedent(CLEAN))
    assert main([str(target), "--baseline", str(base)]) == EXIT_CLEAN
    assert "stale" in capsys.readouterr().out
    assert main([str(target), "--baseline", str(base), "--strict"]) == EXIT_VIOLATIONS
    # 5. refresh: baseline shrinks to the goal state (empty)
    assert main([str(target), "--baseline", str(base), "--update-baseline"]) == EXIT_CLEAN
    assert len(Baseline.load(str(base))) == 0
    assert main([str(target), "--baseline", str(base), "--strict"]) == EXIT_CLEAN


def test_baseline_fingerprint_survives_line_drift(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(textwrap.dedent(VIOLATING))
    module = parse_module(str(target))
    findings = run_rules([module])
    before = fingerprint(findings[0], module.line(findings[0].line))

    # Prepend a comment block: line numbers shift, the fingerprint must not.
    target.write_text("# header\n# more\n" + textwrap.dedent(VIOLATING))
    module = parse_module(str(target))
    findings = run_rules([module])
    assert findings[0].line != 5 or True  # lines moved
    after = fingerprint(findings[0], module.line(findings[0].line))
    assert before == after


def test_baseline_rejects_garbage(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text("{not json")
    with pytest.raises(LintToolError):
        Baseline.load(str(bad))
    bad.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(LintToolError):
        Baseline.load(str(bad))


# ---------------------------------------------------------------------------
# JSON report schema


def test_json_report_schema(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text(textwrap.dedent(VIOLATING))
    rc = main([str(target), "--no-baseline", "--json"])
    assert rc == EXIT_VIOLATIONS
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 2
    assert payload["tool"] == "repro.lint"
    assert payload["files_scanned"] == 1
    assert payload["flow"] is False
    assert set(payload["summary"]) == {
        "DET001", "DET002", "DET003", "DET004", "OBS001", "OBS002",
        "KEY001", "PAR001", "PUR001", "CACHE001",
    }
    assert payload["summary"]["DET001"] == 1
    (finding,) = payload["findings"]
    assert set(finding) == {
        "rule", "path", "line", "col", "message", "hint", "symbol",
    }
    assert payload["suppressed"] == []
    assert payload["stale_baseline"] == []


# ---------------------------------------------------------------------------
# exit-code contract: violations (1) vs tool errors (2)


def test_exit_codes_distinguish_violations_from_tool_errors(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text(textwrap.dedent(CLEAN))
    dirty = tmp_path / "dirty.py"
    dirty.write_text(textwrap.dedent(VIOLATING))

    assert main([str(clean), "--no-baseline"]) == EXIT_CLEAN
    assert main([str(dirty), "--no-baseline"]) == EXIT_VIOLATIONS
    # missing path -> tool error
    assert main([str(tmp_path / "missing.py"), "--no-baseline"]) == EXIT_TOOL_ERROR
    # syntax error in a scanned file -> tool error, reported on stderr
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    assert main([str(broken), "--no-baseline"]) == EXIT_TOOL_ERROR
    assert "cannot parse" in capsys.readouterr().err
    # unknown rule id -> tool error
    assert main([str(clean), "--rules", "NOPE99"]) == EXIT_TOOL_ERROR
    # unreadable baseline -> tool error
    bad = tmp_path / "bad.json"
    bad.write_text("[]")
    assert main([str(clean), "--baseline", str(bad)]) == EXIT_TOOL_ERROR


def test_rule_selection(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(textwrap.dedent(VIOLATING))
    assert main([str(target), "--no-baseline", "--rules", "DET002"]) == EXIT_CLEAN
    assert main([str(target), "--no-baseline", "--rules", "det001"]) == EXIT_VIOLATIONS
