"""Tests for 512-bit circular key-space arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dht.keyspace import (
    KEY_BITS,
    KEY_BYTES,
    KEY_SPACE,
    MAX_KEY,
    distance,
    hash_to_key,
    in_interval,
    in_open_interval,
    interval_width,
    key_fraction,
    key_from_bytes,
    key_to_bytes,
    midpoint,
    validate_key,
)

keys = st.integers(min_value=0, max_value=MAX_KEY)


class TestConstants:
    def test_key_width(self):
        assert KEY_BYTES == 64
        assert KEY_BITS == 512
        assert KEY_SPACE == 1 << 512


class TestValidation:
    def test_accepts_bounds(self):
        assert validate_key(0) == 0
        assert validate_key(MAX_KEY) == MAX_KEY

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            validate_key(-1)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            validate_key(KEY_SPACE)

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            validate_key("abc")


class TestBytesRoundTrip:
    def test_zero(self):
        assert key_from_bytes(key_to_bytes(0)) == 0

    def test_max(self):
        assert key_from_bytes(key_to_bytes(MAX_KEY)) == MAX_KEY

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            key_from_bytes(b"\x00" * 63)

    @given(keys)
    def test_roundtrip(self, key):
        assert key_from_bytes(key_to_bytes(key)) == key

    @given(keys, keys)
    def test_byte_order_preserves_comparison(self, a, b):
        # Big-endian byte comparison must agree with integer comparison —
        # this is what makes lexicographic name order become ring order.
        assert (key_to_bytes(a) < key_to_bytes(b)) == (a < b)


class TestHashToKey:
    def test_in_range(self):
        assert 0 <= hash_to_key(b"anything") < KEY_SPACE

    def test_deterministic(self):
        assert hash_to_key(b"x") == hash_to_key(b"x")

    def test_distinct_inputs_differ(self):
        assert hash_to_key(b"x") != hash_to_key(b"y")


class TestDistance:
    def test_self_distance_zero(self):
        assert distance(5, 5) == 0

    def test_forward(self):
        assert distance(10, 15) == 5

    def test_wraps(self):
        assert distance(MAX_KEY, 0) == 1

    @given(keys, keys)
    def test_antisymmetry(self, a, b):
        if a != b:
            assert distance(a, b) + distance(b, a) == KEY_SPACE

    @given(keys, keys, keys)
    def test_triangle_on_circle(self, a, b, c):
        # Going a->b->c covers a->c plus possibly whole laps.
        assert (distance(a, b) + distance(b, c)) % KEY_SPACE == distance(a, c)


class TestInInterval:
    def test_simple_interval(self):
        assert in_interval(5, 3, 7)
        assert in_interval(7, 3, 7)  # hi inclusive
        assert not in_interval(3, 3, 7)  # lo exclusive
        assert not in_interval(8, 3, 7)

    def test_wrapping_interval(self):
        assert in_interval(MAX_KEY, MAX_KEY - 5, 5)
        assert in_interval(0, MAX_KEY - 5, 5)
        assert in_interval(5, MAX_KEY - 5, 5)
        assert not in_interval(6, MAX_KEY - 5, 5)
        assert not in_interval(MAX_KEY - 5, MAX_KEY - 5, 5)

    def test_full_ring_when_equal(self):
        assert in_interval(123, 77, 77)
        assert in_interval(77, 77, 77)

    @given(keys, keys, keys)
    def test_partition(self, key, lo, hi):
        # Every key is in exactly one of (lo, hi] and (hi, lo] unless lo==hi.
        if lo != hi:
            assert in_interval(key, lo, hi) != in_interval(key, hi, lo)

    @given(keys, keys)
    def test_hi_always_in(self, lo, hi):
        assert in_interval(hi, lo, hi)


class TestOpenInterval:
    def test_excludes_endpoints(self):
        assert not in_open_interval(3, 3, 7)
        assert not in_open_interval(7, 3, 7)
        assert in_open_interval(5, 3, 7)

    def test_degenerate(self):
        assert in_open_interval(5, 7, 7)
        assert not in_open_interval(7, 7, 7)


class TestMidpoint:
    def test_simple(self):
        assert midpoint(0, 10) == 5

    def test_wrapping(self):
        mid = midpoint(MAX_KEY - 1, 3)
        assert in_interval(mid, MAX_KEY - 1, 3)

    @given(keys, keys)
    def test_midpoint_in_arc(self, lo, hi):
        if lo != hi and distance(lo, hi) > 1:
            assert in_interval(midpoint(lo, hi), lo, hi)


class TestWidthAndFraction:
    def test_width(self):
        assert interval_width(0, 10) == 10
        assert interval_width(7, 7) == KEY_SPACE

    def test_fraction_bounds(self):
        assert key_fraction(0) == 0.0
        assert 0.0 < key_fraction(KEY_SPACE // 2) < 1.0
