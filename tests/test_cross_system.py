"""Cross-system integration tests: one trace, four systems, shared invariants.

The paper's comparisons are meaningful only because all systems replay the
*same* logical workload; these tests pin the conservation properties that
guarantee it in this code base.
"""

import pytest

from repro.core.system import SYSTEMS, build_deployment
from repro.workloads.harvard import HarvardConfig, generate_harvard
from repro.workloads.trace import READ


@pytest.fixture(scope="module")
def trace():
    return generate_harvard(HarvardConfig(users=3, days=0.5, seed=31))


@pytest.fixture(scope="module")
def deployments(trace):
    result = {}
    for system in SYSTEMS:
        d = build_deployment(system, 20, seed=2)
        d.load_initial_image(trace)
        d.stabilize()
        for record in trace.records:
            d.advance_to(record.time)
            d.replay_record(record)
        d.advance_to(trace.duration + 120.0)  # drain delayed removals
        result[system] = d
    return result


class TestConservation:
    def test_same_file_bytes_everywhere(self, deployments):
        """The logical file system is identical across systems."""
        totals = {
            system: d.fs.namespace.total_file_bytes()
            for system, d in deployments.items()
        }
        assert len(set(totals.values())) == 1, totals

    def test_same_file_count_everywhere(self, deployments):
        counts = {
            system: d.fs.namespace.file_count()
            for system, d in deployments.items()
        }
        assert len(set(counts.values())) == 1, counts

    def test_stored_bytes_close_across_block_systems(self, deployments):
        """Per-block systems (d2, traditional, traditional+merc) store the
        same block set, so directory volumes must agree closely (removal
        timing may leave tiny grace-period differences)."""
        volumes = {
            system: deployments[system].store.directory.total_bytes
            for system in ("d2", "traditional", "traditional+merc")
        }
        reference = volumes["traditional"]
        for system, volume in volumes.items():
            assert volume == pytest.approx(reference, rel=0.02), (system, volumes)

    def test_primary_loads_partition_directory(self, deployments):
        for system, d in deployments.items():
            assert sum(d.store.primary_loads().values()) == len(d.store.directory)

    def test_write_traffic_identical_for_block_systems(self, deployments):
        """Same blocks written in d2 and traditional: ledgers must agree."""
        d2 = deployments["d2"].store.ledger.total_written
        trad = deployments["traditional"].store.ledger.total_written
        assert d2 == trad

    def test_only_balancing_systems_migrate(self, deployments):
        for system, d in deployments.items():
            migrated = d.store.ledger.total_migrated
            if system in ("traditional", "traditional-file"):
                assert migrated == 0
            # (balancing systems may or may not have migrated at this scale)

    def test_no_dangling_physical_entries(self, deployments):
        for system, d in deployments.items():
            for key in d.store.physical_at:
                assert key in d.store.directory, system


class TestSpreadOrdering:
    def test_locality_ordering_holds(self, deployments, trace):
        """A random sample of reads touches the fewest nodes under D2."""
        spreads = {}
        reads = [r for r in trace.records if r.op == READ][:50]
        for system, d in deployments.items():
            nodes = set()
            for record in reads:
                try:
                    for key, _ in d.read_fetches(record.path, record.offset,
                                                 record.length or None):
                        nodes.add(d.ring.successor(key))
                except Exception:
                    continue
            spreads[system] = len(nodes)
        assert spreads["d2"] <= spreads["traditional-file"]
        assert spreads["traditional-file"] <= spreads["traditional"]
