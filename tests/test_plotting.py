"""Tests for the ASCII chart renderers."""

from repro.analysis.plotting import (
    ascii_scatter,
    ascii_timeseries,
    timeseries_from_samples,
)


class TestTimeseries:
    def test_renders_all_series_marks(self):
        chart = ascii_timeseries(
            {"a": [(0, 1.0), (1, 2.0)], "b": [(0, 0.5), (1, 0.2)]},
            title="T",
        )
        assert "T" in chart
        assert "o=a" in chart and "x=b" in chart
        assert "o" in chart and "x" in chart

    def test_empty(self):
        assert "(no data)" in ascii_timeseries({}, title="T")

    def test_extremes_on_chart_edges(self):
        chart = ascii_timeseries({"a": [(0, 0.0), (10, 5.0)]}, height=8)
        lines = chart.splitlines()
        assert "5" in lines[0]                 # y max label on top
        assert lines[7].strip().startswith("0 |")  # y min label at bottom row
        assert lines[0].rstrip().endswith("o")     # max point at top-right

    def test_constant_series_does_not_crash(self):
        chart = ascii_timeseries({"a": [(0, 3.0), (1, 3.0)]})
        assert "o" in chart

    def test_from_samples(self):
        class S:
            def __init__(self, t, v):
                self.time, self.nsd = t, v

        points = timeseries_from_samples(
            [S(86400.0, 0.5), S(172800.0, 0.7)], lambda s: s.nsd
        )
        assert points == [(1.0, 0.5), (2.0, 0.7)]


class TestScatter:
    def test_diagonal_and_points(self):
        chart = ascii_scatter([(1.0, 0.5), (2.0, 4.0)], title="S")
        assert "S" in chart
        assert "." in chart and "o" in chart

    def test_counts_sides(self):
        chart = ascii_scatter([(2.0, 1.0), (2.0, 1.5), (1.0, 3.0)])
        assert "faster in D2 (below diagonal here): 2; slower: 1" in chart

    def test_empty(self):
        assert "(no data)" in ascii_scatter([], title="S")

    def test_zero_latency_clamped(self):
        chart = ascii_scatter([(0.0, 0.0), (1.0, 1.0)])
        assert "o" in chart

    def test_linear_mode(self):
        chart = ascii_scatter([(1.0, 2.0), (3.0, 1.0)], log=False)
        assert "o" in chart
