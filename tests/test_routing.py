"""Tests for the Chord-style greedy finger routing model."""

import math
import random

import pytest

from repro.dht.consistent_hashing import random_node_ids
from repro.dht.keyspace import KEY_SPACE
from repro.dht.ring import Ring
from repro.dht.routing import (
    expected_hops,
    finger_table_for,
    route,
    route_cold,
    route_many,
)


def build_ring(n, seed=0):
    ring = Ring()
    rng = random.Random(seed)
    for i, node_id in enumerate(random_node_ids(n, rng)):
        ring.join(f"n{i}", node_id)
    return ring, rng


class TestRouteCorrectness:
    def test_terminates_at_owner(self):
        ring, rng = build_ring(32)
        for _ in range(50):
            key = rng.randrange(KEY_SPACE)
            result = route(ring, "n0", key)
            assert result.owner == ring.successor(key)
            assert result.path[-1] == result.owner

    def test_path_starts_at_source(self):
        ring, rng = build_ring(8)
        result = route(ring, "n3", 12345)
        assert result.path[0] == "n3"

    def test_source_owns_key(self):
        ring, _ = build_ring(8)
        own_id = ring.position_of("n2")
        result = route(ring, "n2", own_id)
        assert result.owner == "n2"
        assert result.hops == 0
        assert result.path == ["n2"]

    def test_single_node_ring(self):
        ring = Ring()
        ring.join("solo", 42)
        result = route(ring, "solo", 7)
        assert result.owner == "solo"
        assert result.hops == 0

    def test_two_node_ring(self):
        ring = Ring()
        ring.join("a", 100)
        ring.join("b", KEY_SPACE // 2)
        for key in (50, 200, KEY_SPACE // 2 + 5):
            result = route(ring, "a", key)
            assert result.owner == ring.successor(key)

    def test_unknown_source_rejected(self):
        ring, _ = build_ring(4)
        with pytest.raises(ValueError):
            route(ring, "ghost", 1)

    def test_path_makes_forward_progress(self):
        """Every hop strictly shrinks the clockwise distance to the key."""
        ring, rng = build_ring(64, seed=5)
        from repro.dht.keyspace import distance

        for _ in range(20):
            key = rng.randrange(KEY_SPACE)
            result = route(ring, "n0", key)
            distances = [
                distance(ring.position_of(name), key) for name in result.path[:-1]
            ]
            assert all(d1 > d2 for d1, d2 in zip(distances, distances[1:])) or len(distances) <= 1


class TestHopScaling:
    def test_hops_logarithmic(self):
        """Mean hops stays within a small factor of 0.5*log2(n)."""
        for n in (16, 64, 256):
            ring, rng = build_ring(n, seed=n)
            total = 0
            samples = 100
            for _ in range(samples):
                source = f"n{rng.randrange(n)}"
                key = rng.randrange(KEY_SPACE)
                total += route(ring, source, key).hops
            mean = total / samples
            assert mean <= 2.5 * math.log2(n)
            assert mean >= 0.2 * math.log2(n)

    def test_hops_grow_with_ring_size(self):
        means = []
        for n in (8, 512):
            ring, rng = build_ring(n, seed=n)
            total = sum(
                route(ring, f"n{rng.randrange(n)}", rng.randrange(KEY_SPACE)).hops
                for _ in range(150)
            )
            means.append(total / 150)
        assert means[1] > means[0]


class TestFingerTable:
    def test_matches_cold_routing(self):
        """The precomputed table routes byte-identically to the reference."""
        for n in (1, 2, 3, 8, 64, 300):
            ring, rng = build_ring(n, seed=n)
            names = list(ring.names())
            for _ in range(60):
                source = names[rng.randrange(n)]
                key = rng.randrange(KEY_SPACE)
                assert route(ring, source, key).path == \
                    route_cold(ring, source, key).path

    def test_shared_per_ring(self):
        ring, _ = build_ring(8)
        assert finger_table_for(ring) is finger_table_for(ring)

    def test_membership_change_invalidates(self):
        ring, rng = build_ring(16, seed=3)
        table = finger_table_for(ring)
        key = rng.randrange(KEY_SPACE)
        route(ring, "n0", key)  # populate
        ring.join("late", rng.randrange(KEY_SPACE))
        result = route(ring, "n0", key)
        assert result.owner == ring.successor(key)
        assert table is finger_table_for(ring)  # same table, refreshed
        names = list(ring.names())
        for _ in range(40):
            source = names[rng.randrange(len(names))]
            probe = rng.randrange(KEY_SPACE)
            assert route(ring, source, probe).path == \
                route_cold(ring, source, probe).path

    def test_leave_invalidates(self):
        ring, rng = build_ring(16, seed=9)
        key = rng.randrange(KEY_SPACE)
        route(ring, "n0", key)
        ring.leave("n7")
        names = [n for n in ring.names()]
        for _ in range(40):
            source = names[rng.randrange(len(names))]
            probe = rng.randrange(KEY_SPACE)
            assert route(ring, source, probe).path == \
                route_cold(ring, source, probe).path


class TestRouteMany:
    def test_matches_single_route(self):
        ring, rng = build_ring(64, seed=7)
        keys = [rng.randrange(KEY_SPACE) for _ in range(200)]
        batched = route_many(ring, "n0", keys)
        singles = [route(ring, "n0", k) for k in keys]
        assert [r.path for r in batched] == [r.path for r in singles]
        assert [r.owner for r in batched] == [r.owner for r in singles]
        assert [r.hops for r in batched] == [r.hops for r in singles]

    def test_preserves_input_order(self):
        ring, rng = build_ring(32, seed=2)
        keys = [rng.randrange(KEY_SPACE) for _ in range(50)]
        results = route_many(ring, "n1", keys)
        assert [r.key for r in results] == keys

    def test_empty_batch(self):
        ring, _ = build_ring(4)
        assert route_many(ring, "n0", []) == []

    def test_unknown_source_rejected(self):
        ring, _ = build_ring(4)
        with pytest.raises(ValueError):
            route_many(ring, "ghost", [1, 2])

    def test_single_node_ring(self):
        ring = Ring()
        ring.join("solo", 42)
        results = route_many(ring, "solo", [1, 99])
        assert all(r.owner == "solo" and r.hops == 0 for r in results)


class TestMessages:
    def test_messages_is_hops_plus_response(self):
        ring, rng = build_ring(32)
        result = route(ring, "n0", rng.randrange(KEY_SPACE))
        assert result.messages == result.hops + 1

    def test_expected_hops_formula(self):
        assert expected_hops(1) == 0.0
        assert expected_hops(1024) == pytest.approx(5.0)
