"""Tests for the three key-assignment schemes."""

import pytest

from repro.dht.keyspace import KEY_SPACE
from repro.fs.keyschemes import (
    D2KeyScheme,
    TraditionalFileKeyScheme,
    TraditionalKeyScheme,
    make_scheme,
    storage_identity,
)
from repro.fs.namespace import Namespace


def sample_namespace():
    ns = Namespace()
    ns.makedirs("/home/alice/src")
    files = [
        ns.create_file("/home/alice/src/a.c", size=30000),
        ns.create_file("/home/alice/src/b.c", size=30000),
    ]
    ns.makedirs("/home/bob")
    other = ns.create_file("/home/bob/z.txt", size=30000)
    return ns, files, other


class TestFactory:
    def test_known_systems(self):
        assert isinstance(make_scheme("d2", "v"), D2KeyScheme)
        assert isinstance(make_scheme("traditional", "v"), TraditionalKeyScheme)
        assert isinstance(make_scheme("traditional-file", "v"), TraditionalFileKeyScheme)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_scheme("chord", "v")


class TestD2Scheme:
    def test_file_blocks_contiguous(self):
        ns, (a, b), _ = sample_namespace()
        scheme = D2KeyScheme("vol")
        keys = [scheme.file_block_key(a, n, 1) for n in range(5)]
        assert keys == sorted(keys)

    def test_sibling_files_adjacent(self):
        """Blocks of files in one directory cluster; other dirs sort away."""
        ns, (a, b), other = sample_namespace()
        scheme = D2KeyScheme("vol")
        a_keys = [scheme.file_block_key(a, n, 1) for n in range(4)]
        b_keys = [scheme.file_block_key(b, n, 1) for n in range(4)]
        o_key = scheme.file_block_key(other, 0, 1)
        lo, hi = min(a_keys + b_keys), max(a_keys + b_keys)
        assert not (lo <= o_key <= hi)

    def test_directory_key_precedes_children(self):
        ns, (a, _), _ = sample_namespace()
        scheme = D2KeyScheme("vol")
        src = ns.resolve_dir("/home/alice/src")
        assert scheme.directory_block_key(src, 0, 1) < scheme.file_block_key(a, 0, 1)

    def test_root_key_lowest_in_volume(self):
        ns, (a, _), _ = sample_namespace()
        scheme = D2KeyScheme("vol")
        assert scheme.root_key() < scheme.file_block_key(a, 0, 1)

    def test_rename_does_not_change_keys(self):
        ns, (a, _), _ = sample_namespace()
        scheme = D2KeyScheme("vol")
        before = scheme.file_block_key(a, 1, 1)
        ns.rename("/home/alice/src/a.c", "/home/bob/moved.c")
        assert scheme.file_block_key(a, 1, 1) == before


class TestTraditionalScheme:
    def test_blocks_scatter(self):
        """Adjacent blocks of one file land far apart (uniform hashing)."""
        ns, (a, _), _ = sample_namespace()
        scheme = TraditionalKeyScheme("vol")
        keys = [scheme.file_block_key(a, n, 1) for n in range(8)]
        assert keys != sorted(keys)  # astronomically unlikely if uniform
        assert len(set(keys)) == 8

    def test_versions_change_keys(self):
        ns, (a, _), _ = sample_namespace()
        scheme = TraditionalKeyScheme("vol")
        assert scheme.file_block_key(a, 1, 1) != scheme.file_block_key(a, 1, 2)

    def test_rename_stable(self):
        """Hashed keys mimic content hashes: renames keep keys."""
        ns, (a, _), _ = sample_namespace()
        scheme = TraditionalKeyScheme("vol")
        before = scheme.file_block_key(a, 1, 1)
        ns.rename("/home/alice/src/a.c", "/home/bob/moved.c")
        assert scheme.file_block_key(a, 1, 1) == before


class TestTraditionalFileScheme:
    def test_all_blocks_share_key(self):
        ns, (a, _), _ = sample_namespace()
        scheme = TraditionalFileKeyScheme("vol")
        keys = {scheme.file_block_key(a, n, v) for n in range(8) for v in range(3)}
        assert len(keys) == 1

    def test_distinct_files_differ(self):
        ns, (a, b), _ = sample_namespace()
        scheme = TraditionalFileKeyScheme("vol")
        assert scheme.file_block_key(a, 0, 1) != scheme.file_block_key(b, 0, 1)


class TestFileKeyMaker:
    """The prefix-reusing fast path must agree with file_block_key exactly."""

    @pytest.mark.parametrize(
        "scheme_name", ["d2", "traditional", "traditional-file"]
    )
    def test_matches_file_block_key(self, scheme_name):
        ns, (a, b), other = sample_namespace()
        scheme = make_scheme(scheme_name, "vol")
        for node in (a, b, other):
            key_for = scheme.file_key_maker(node)
            for block in (0, 1, 2, 7, 255):
                for version in (0, 1, 2, 9):
                    assert key_for(block, version) == \
                        scheme.file_block_key(node, block, version), \
                        (scheme_name, block, version)

    def test_keys_stay_in_keyspace(self):
        ns, (a, _), _ = sample_namespace()
        for scheme_name in ("d2", "traditional", "traditional-file"):
            key_for = make_scheme(scheme_name, "vol").file_key_maker(a)
            assert 0 <= key_for(3, 2) < KEY_SPACE


class TestStorageIdentity:
    def test_distinct_paths_differ(self):
        assert storage_identity((1, 2), ()) != storage_identity((1, 3), ())

    def test_overflow_included(self):
        assert storage_identity((1,), ("x",)) != storage_identity((1,), ("y",))
