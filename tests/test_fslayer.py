"""Tests for the FS layer: op emission, versioning, metadata discipline."""

import pytest

from repro.dht.ring import Ring
from repro.fs.blocks import BLOCK_SIZE, INLINE_DATA_THRESHOLD, BlockKind
from repro.fs.fslayer import DhtFileSystem, apply_ops
from repro.fs.keyschemes import make_scheme
from repro.fs.namespace import NamespaceError
from repro.sim.engine import Simulator
from repro.store.migration import StorageCoordinator


@pytest.fixture
def fs():
    return DhtFileSystem(make_scheme("d2", "vol"))


def puts(ops):
    return [op for op in ops if op.action == "put"]


def removes(ops):
    return [op for op in ops if op.action == "remove"]


def gets(ops):
    return [op for op in ops if op.action == "get"]


class TestFormat:
    def test_format_writes_root_and_rootdir(self, fs):
        ops = fs.format()
        kinds = [op.kind for op in ops]
        assert BlockKind.ROOT in kinds
        assert BlockKind.DIRECTORY in kinds
        assert all(op.action == "put" for op in ops)


class TestCreate:
    def test_create_emits_data_inode_metadata(self, fs):
        fs.format()
        fs.makedirs("/home")
        ops = fs.create("/home/f.dat", size=3 * BLOCK_SIZE)
        put_kinds = [op.kind for op in puts(ops)]
        assert put_kinds.count(BlockKind.DATA) == 3
        assert put_kinds.count(BlockKind.INODE) == 1
        assert BlockKind.DIRECTORY in put_kinds
        assert BlockKind.ROOT in put_kinds

    def test_small_file_inlined(self, fs):
        fs.format()
        ops = fs.create("/tiny", size=INLINE_DATA_THRESHOLD)
        put_kinds = [op.kind for op in puts(ops)]
        assert BlockKind.DATA not in put_kinds
        assert put_kinds.count(BlockKind.INODE) == 1

    def test_metadata_path_reversioned_to_root(self, fs):
        """Every create rewrites the full directory chain (Section 3)."""
        fs.format()
        fs.makedirs("/a/b/c")
        ops = fs.create("/a/b/c/f", size=1000)
        dir_puts = [op for op in puts(ops) if op.kind is BlockKind.DIRECTORY]
        # Chain: /, /a, /a/b, /a/b/c.
        assert len({op.ident for op in dir_puts}) == 4

    def test_data_put_sizes_sum_to_file(self, fs):
        fs.format()
        size = 2 * BLOCK_SIZE + 123
        ops = fs.create("/f", size=size)
        data = [op for op in puts(ops) if op.kind is BlockKind.DATA]
        assert sum(op.size for op in data) == size


class TestWrite:
    def test_write_touches_covered_blocks_only(self, fs):
        fs.format()
        fs.create("/f", size=4 * BLOCK_SIZE)
        ops = fs.write("/f", offset=BLOCK_SIZE, length=10)
        data_puts = [op for op in puts(ops) if op.kind is BlockKind.DATA]
        assert len(data_puts) == 1

    def test_write_bumps_version_and_removes_old(self, fs):
        fs.format()
        fs.create("/f", size=BLOCK_SIZE)
        node = fs.namespace.resolve_file("/f")
        v_before = node.version
        ops = fs.write("/f", offset=0, length=10)
        assert node.version == v_before + 1
        removed_kinds = [op.kind for op in removes(ops)]
        assert BlockKind.DATA in removed_kinds
        assert BlockKind.INODE in removed_kinds

    def test_append_extends_file(self, fs):
        fs.format()
        fs.create("/f", size=BLOCK_SIZE)
        fs.write("/f", offset=BLOCK_SIZE, length=BLOCK_SIZE)
        assert fs.namespace.resolve_file("/f").size == 2 * BLOCK_SIZE

    def test_inline_to_blocks_transition(self, fs):
        """Growing past the inline threshold materializes every block."""
        fs.format()
        fs.create("/f", size=100)
        ops = fs.write("/f", offset=100, length=BLOCK_SIZE)
        data_puts = [op for op in puts(ops) if op.kind is BlockKind.DATA]
        assert len(data_puts) == 2  # new size 100+8192 spans two blocks

    def test_zero_length_write_noop(self, fs):
        fs.format()
        fs.create("/f", size=100)
        assert fs.write("/f", offset=0, length=0) == []

    def test_unchanged_blocks_keep_old_version_on_read(self, fs):
        fs.format()
        fs.create("/f", size=3 * BLOCK_SIZE)
        keys_before = fs.file_data_keys("/f")
        fs.write("/f", offset=0, length=10)  # touches block 1 only
        keys_after = fs.file_data_keys("/f")
        assert keys_after[0] != keys_before[0]
        assert keys_after[1:] == keys_before[1:]


class TestRead:
    def test_read_emits_metadata_then_data(self, fs):
        fs.format()
        fs.makedirs("/d")
        fs.create("/d/f", size=2 * BLOCK_SIZE)
        ops = fs.read("/d/f")
        kinds = [op.kind for op in ops]
        assert kinds[0] is BlockKind.ROOT
        assert kinds.count(BlockKind.DATA) == 2
        assert all(op.action == "get" for op in ops)

    def test_partial_read(self, fs):
        fs.format()
        fs.create("/f", size=4 * BLOCK_SIZE)
        ops = fs.read("/f", offset=0, length=10)
        assert sum(1 for op in ops if op.kind is BlockKind.DATA) == 1

    def test_inline_read_has_no_data_ops(self, fs):
        fs.format()
        fs.create("/tiny", size=100)
        ops = fs.read("/tiny")
        assert all(op.kind is not BlockKind.DATA for op in ops)

    def test_read_missing_raises(self, fs):
        fs.format()
        with pytest.raises(NamespaceError):
            fs.read("/ghost")

    def test_read_fetches_live_versions(self, fs):
        fs.format()
        fs.create("/f", size=2 * BLOCK_SIZE)
        fs.write("/f", offset=0, length=10)
        ops = fs.read("/f")
        data_keys = [op.key for op in ops if op.kind is BlockKind.DATA]
        assert data_keys == fs.file_data_keys("/f")


class TestRemove:
    def test_remove_retires_all_blocks(self, fs):
        fs.format()
        fs.create("/f", size=2 * BLOCK_SIZE)
        ops = fs.remove("/f")
        removed = removes(ops)
        kinds = [op.kind for op in removed]
        assert kinds.count(BlockKind.DATA) == 2
        assert kinds.count(BlockKind.INODE) == 1
        assert not fs.namespace.exists("/f")

    def test_remove_empty_directory(self, fs):
        fs.format()
        fs.mkdir("/d")
        ops = fs.remove("/d")
        assert any(op.kind is BlockKind.DIRECTORY for op in removes(ops))


class TestRename:
    def test_rename_emits_no_data_ops(self, fs):
        """Renames rewrite only directory metadata (Section 4.2)."""
        fs.format()
        fs.makedirs("/a")
        fs.makedirs("/b")
        fs.create("/a/f", size=10 * BLOCK_SIZE)
        ops = fs.rename("/a/f", "/b/g")
        assert all(op.kind in (BlockKind.DIRECTORY, BlockKind.ROOT) for op in ops)

    def test_rename_keeps_data_keys(self, fs):
        fs.format()
        fs.makedirs("/a")
        fs.makedirs("/b")
        fs.create("/a/f", size=2 * BLOCK_SIZE)
        before = fs.file_data_keys("/a/f")
        fs.rename("/a/f", "/b/g")
        assert fs.file_data_keys("/b/g") == before


class TestApplyOps:
    def test_apply_to_store(self):
        ring = Ring()
        for i in range(4):
            ring.join(f"n{i}", (i + 1) * 10**150)
        store = StorageCoordinator(ring, Simulator())
        fs = DhtFileSystem(make_scheme("d2", "vol"))
        apply_ops(store, fs.format())
        apply_ops(store, fs.create("/f", size=2 * BLOCK_SIZE))
        assert len(store.directory) >= 4  # root + rootdir + inode + 2 data

    def test_traditional_file_puts_coalesce(self):
        ring = Ring()
        for i in range(4):
            ring.join(f"n{i}", (i + 1) * 10**150)
        store = StorageCoordinator(ring, Simulator())
        fs = DhtFileSystem(make_scheme("traditional-file", "vol"))
        apply_ops(store, fs.format())
        ops = fs.create("/f", size=3 * BLOCK_SIZE)
        apply_ops(store, ops)
        node = fs.namespace.resolve_file("/f")
        file_key = fs.scheme.file_block_key(node, 1, node.version)
        # All data blocks and the inode share the file key; the entry holds
        # the combined size.
        assert store.directory.size_of(file_key) > 3 * BLOCK_SIZE

    def test_apply_counters(self, fs):
        ring = Ring()
        ring.join("solo", 123)
        store = StorageCoordinator(ring, Simulator())
        counters = apply_ops(store, fs.format())
        assert counters["put"] > 0
        assert counters["remove"] == 0


class TestReaddirStat:
    def test_readdir_fetches_dir_blocks(self, fs):
        fs.format()
        fs.makedirs("/a/b")
        fs.create("/a/b/f", size=100)
        ops = fs.readdir("/a/b")
        assert all(op.action == "get" for op in ops)
        kinds = [op.kind for op in ops]
        assert kinds[0] is BlockKind.ROOT
        assert kinds.count(BlockKind.DIRECTORY) >= 3  # /, /a, /a/b

    def test_readdir_root(self, fs):
        fs.format()
        ops = fs.readdir("/")
        assert any(op.kind is BlockKind.DIRECTORY for op in ops)

    def test_readdir_of_file_rejected(self, fs):
        fs.format()
        fs.create("/f", size=10)
        with pytest.raises(NamespaceError):
            fs.readdir("/f")

    def test_stat_file(self, fs):
        fs.format()
        fs.create("/f", size=2 * BLOCK_SIZE)
        info = fs.stat("/f")
        assert info["type"] == "file"
        assert info["size"] == 2 * BLOCK_SIZE
        assert info["blocks"] == 2
        assert info["inline"] is False

    def test_stat_inline_file(self, fs):
        fs.format()
        fs.create("/tiny", size=64)
        assert fs.stat("/tiny")["inline"] is True

    def test_stat_directory(self, fs):
        fs.format()
        fs.makedirs("/d")
        fs.create("/d/f", size=10)
        info = fs.stat("/d")
        assert info["type"] == "directory"
        assert info["entries"] == 1

    def test_stat_missing_rejected(self, fs):
        fs.format()
        with pytest.raises(NamespaceError):
            fs.stat("/ghost")
