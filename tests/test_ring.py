"""Tests for ring membership and successor lookup."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dht.keyspace import KEY_SPACE, MAX_KEY, in_interval
from repro.dht.ring import Ring, RingError, load_split_point


def make_ring(positions):
    ring = Ring()
    for i, pos in enumerate(positions):
        ring.join(f"n{i}", pos)
    return ring


class TestMembership:
    def test_join_and_len(self):
        ring = make_ring([10, 20, 30])
        assert len(ring) == 3
        assert "n0" in ring

    def test_duplicate_name_rejected(self):
        ring = make_ring([10])
        with pytest.raises(RingError):
            ring.join("n0", 20)

    def test_duplicate_position_rejected(self):
        ring = make_ring([10])
        with pytest.raises(RingError):
            ring.join("other", 10)

    def test_leave_returns_position(self):
        ring = make_ring([10, 20])
        assert ring.leave("n0") == 10
        assert "n0" not in ring
        assert len(ring) == 1

    def test_leave_unknown_raises(self):
        with pytest.raises(RingError):
            make_ring([10]).leave("ghost")

    def test_names_in_ring_order(self):
        ring = make_ring([30, 10, 20])
        assert list(ring.names()) == ["n1", "n2", "n0"]

    def test_positions_sorted(self):
        ring = make_ring([30, 10, 20])
        assert ring.positions() == (10, 20, 30)


class TestSuccessor:
    def test_exact_position_owns_key(self):
        ring = make_ring([10, 20, 30])
        assert ring.successor(20) == "n1"

    def test_key_between_nodes(self):
        ring = make_ring([10, 20, 30])
        assert ring.successor(15) == "n1"

    def test_wraps_past_largest(self):
        ring = make_ring([10, 20, 30])
        assert ring.successor(35) == "n0"

    def test_empty_ring_raises(self):
        with pytest.raises(RingError):
            Ring().successor(5)

    def test_successors_distinct(self):
        ring = make_ring([10, 20, 30])
        assert ring.successors(15, 2) == ["n1", "n2"]

    def test_successors_capped_at_ring_size(self):
        ring = make_ring([10, 20])
        assert len(ring.successors(5, 10)) == 2

    def test_single_node_owns_everything(self):
        ring = make_ring([42])
        assert ring.successor(0) == "n0"
        assert ring.successor(MAX_KEY) == "n0"
        assert ring.owns("n0", 7)


class TestNeighbors:
    def test_predecessor_successor_inverse(self):
        ring = make_ring([10, 20, 30])
        for name in ring.names():
            assert ring.predecessor_of(ring.successor_of(name)) == name

    def test_predecessor_wraps(self):
        ring = make_ring([10, 20, 30])
        assert ring.predecessor_of("n0") == "n2"


class TestRanges:
    def test_range_of(self):
        ring = make_ring([10, 20, 30])
        assert ring.range_of("n1") == (10, 20)

    def test_first_node_range_wraps(self):
        ring = make_ring([10, 20, 30])
        assert ring.range_of("n0") == (30, 10)

    def test_owns_matches_range(self):
        ring = make_ring([10, 20, 30])
        assert ring.owns("n1", 15)
        assert ring.owns("n1", 20)
        assert not ring.owns("n1", 10)
        assert not ring.owns("n1", 25)

    def test_ranges_partition_ring(self):
        rng = random.Random(3)
        positions = sorted({rng.randrange(KEY_SPACE) for _ in range(8)})
        ring = make_ring(positions)
        probes = [rng.randrange(KEY_SPACE) for _ in range(200)]
        for key in probes:
            owners = [n for n in ring.names() if ring.owns(n, key)]
            assert len(owners) == 1
            assert owners[0] == ring.successor(key)


class TestChangePosition:
    def test_move(self):
        ring = make_ring([10, 20, 30])
        old, new = ring.change_position("n0", 25)
        assert (old, new) == (10, 25)
        assert ring.successor(22) == "n0"

    def test_move_to_occupied_restores(self):
        ring = make_ring([10, 20, 30])
        with pytest.raises(RingError):
            ring.change_position("n0", 20)
        assert ring.position_of("n0") == 10  # rolled back

    def test_free_position_at(self):
        ring = make_ring([10, 20, 30])
        assert ring.free_position_at(15) == 15
        assert ring.free_position_at(20) == 19

    def test_free_position_wraps_at_zero(self):
        ring = make_ring([0])
        assert ring.free_position_at(0) == MAX_KEY


class TestReplicaRange:
    def test_covers_own_and_predecessor_arcs(self):
        ring = make_ring([10, 20, 30, 40])
        lo, hi = ring.replica_range_of("n2", 2)
        assert (lo, hi) == (10, 30)

    def test_whole_ring_when_replicas_ge_nodes(self):
        ring = make_ring([10, 20])
        lo, hi = ring.replica_range_of("n0", 3)
        assert lo == hi  # full ring


class TestLookupMemo:
    def test_repeat_lookup_consistent(self):
        ring = make_ring([10, 20, 30])
        assert ring.successor(15) == ring.successor(15) == "n1"

    def test_memo_invalidated_by_join(self):
        ring = make_ring([10, 30])
        assert ring.successor(15) == "n1"
        assert ring.successors(15, 2) == ["n1", "n0"]
        ring.join("n2", 20)  # now owns (10, 20]
        assert ring.successor(15) == "n2"
        assert ring.successors(15, 2) == ["n2", "n1"]

    def test_memo_invalidated_by_leave(self):
        ring = make_ring([10, 20, 30])
        assert ring.successor(15) == "n1"
        ring.leave("n1")
        assert ring.successor(15) == "n2"

    def test_memo_invalidated_by_change_position(self):
        ring = make_ring([10, 20, 30])
        assert ring.successor(22) == "n2"
        ring.change_position("n0", 25)
        assert ring.successor(22) == "n0"

    def test_successors_returns_fresh_list(self):
        ring = make_ring([10, 20, 30])
        group = ring.successors(15, 2)
        group.append("tampered")
        assert ring.successors(15, 2) == ["n1", "n2"]

    def test_memoized_matches_bisect_under_churn(self):
        rng = random.Random(11)
        ring = make_ring(sorted({rng.randrange(KEY_SPACE) for _ in range(16)}))
        for round_ in range(4):
            probes = [rng.randrange(KEY_SPACE) for _ in range(100)]
            for key in probes + probes:  # second pass hits the memo
                owner = ring.successor(key)
                assert ring.owns(owner, key)
            ring.join(f"extra{round_}", ring.free_position_at(rng.randrange(KEY_SPACE)))


class TestReplicaRangeEquivalence:
    def _walk_reference(self, ring, name, replicas):
        # The pre-optimization implementation: replicas predecessor hops.
        if replicas >= len(ring):
            pos = ring.position_of(name)
            return pos, pos
        start = name
        for _ in range(replicas):
            start = ring.predecessor_of(start)
        return ring.position_of(start), ring.position_of(name)

    def test_matches_predecessor_walk(self):
        ring = make_ring([10, 20, 30, 40, 50])
        for name in ring.names():
            for replicas in (0, 1, 2, 3, 4, 5, 7):
                assert ring.replica_range_of(name, replicas) == \
                    self._walk_reference(ring, name, replicas), (name, replicas)


class TestLoadSplitPoint:
    def test_median_of_range(self):
        split = load_split_point([12, 14, 16, 18], 10, 20)
        assert split == 14

    def test_requires_two_keys(self):
        assert load_split_point([15], 10, 20) is None
        assert load_split_point([], 10, 20) is None

    def test_ignores_keys_outside_range(self):
        split = load_split_point([5, 12, 14, 25], 10, 20)
        assert split == 12

    def test_wrapping_range(self):
        # Clockwise order from just past MAX_KEY-5 is [MAX_KEY-1, 1, 3];
        # the lower median of three is the middle element.
        split = load_split_point([MAX_KEY - 1, 1, 3], MAX_KEY - 5, 5)
        assert split == 1

    def test_split_never_at_hi(self):
        # The owner's own position is never a useful split point.
        for keys in ([15, 20], [11, 20], [12, 19, 20]):
            split = load_split_point(keys, 10, 20)
            assert split != 20

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=2,
                    max_size=50, unique=True))
    def test_split_divides_load(self, keys):
        lo, hi = 0, 1000
        in_range = [k for k in keys if in_interval(k, lo, hi)]
        split = load_split_point(keys, lo, hi)
        if split is None:
            return
        below = sum(1 for k in in_range if in_interval(k, lo, split))
        above = len(in_range) - below
        # The split leaves each side with at least one key and within one
        # of half the load.
        assert below >= 1 and above >= 1
        assert abs(below - above) <= 1
