"""Cross-cutting property-based tests on system invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dht.keyspace import KEY_SPACE
from repro.dht.load_balance import KargerRuhlBalancer
from repro.dht.ring import Ring
from repro.fs.fslayer import DhtFileSystem, apply_ops
from repro.fs.keyschemes import D2KeyScheme, make_scheme
from repro.sim.engine import Simulator
from repro.store.migration import StorageCoordinator

# ----------------------------------------------------------------------
# Ring invariants under arbitrary membership churn


class RingOps:
    """Interpreter for a random join/leave/move program."""

    def __init__(self):
        self.ring = Ring()
        self.counter = 0

    def apply(self, op, value):
        names = list(self.ring.names())
        if op == "join" or not names:
            name = f"n{self.counter}"
            self.counter += 1
            if not self.ring.occupied(value):
                self.ring.join(name, value)
        elif op == "leave" and len(names) > 1:
            self.ring.leave(names[value % len(names)])
        elif op == "move" and names:
            mover = names[value % len(names)]
            target = self.ring.free_position_at((value * 7919) % KEY_SPACE)
            if target != self.ring.position_of(mover):
                self.ring.change_position(mover, target)


@given(
    st.lists(
        st.tuples(st.sampled_from(["join", "leave", "move"]),
                  st.integers(min_value=0, max_value=KEY_SPACE - 1)),
        min_size=1,
        max_size=40,
    ),
    st.integers(min_value=0, max_value=KEY_SPACE - 1),
)
@settings(deadline=None)
def test_ring_ownership_total_after_churn(program, probe):
    """After any churn sequence every key has exactly one owner, and the
    owner's arc actually covers the key."""
    machine = RingOps()
    machine.apply("join", 0)
    for op, value in program:
        machine.apply(op, value)
    ring = machine.ring
    owner = ring.successor(probe)
    assert ring.owns(owner, probe)
    owners = [name for name in ring.names() if ring.owns(name, probe)]
    if len(ring) > 1:
        assert owners == [owner]


# ----------------------------------------------------------------------
# FS/store end-to-end invariant: no blocks leak or dangle


@settings(deadline=None, max_examples=25,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.sampled_from(["create", "write", "delete", "rename"]),
                min_size=1, max_size=30),
       st.randoms(use_true_random=False))
def test_store_consistent_with_namespace(ops, pyrandom):
    """After arbitrary FS activity and balancing, physical placement covers
    exactly the live directory, and every owner-derived holder exists."""
    ring = Ring()
    rng = random.Random(pyrandom.randint(0, 10**9))
    positions = set()
    while len(positions) < 8:
        positions.add(rng.randrange(KEY_SPACE))
    for i, position in enumerate(sorted(positions)):
        ring.join(f"n{i}", position)
    sim = Simulator()
    store = StorageCoordinator(ring, sim, removal_delay=0.0)
    fs = DhtFileSystem(make_scheme("d2", "vol"))
    apply_ops(store, fs.format())
    balancer = KargerRuhlBalancer(ring, store, rng=rng)

    counter = 0
    live_files = []
    for op in ops:
        if op == "create" or not live_files:
            path = f"/f{counter}"
            counter += 1
            apply_ops(store, fs.create(path, size=rng.randrange(0, 40000)))
            live_files.append(path)
        elif op == "write":
            path = rng.choice(live_files)
            apply_ops(store, fs.write(path, 0, rng.randrange(1, 20000)))
        elif op == "delete":
            path = live_files.pop(rng.randrange(len(live_files)))
            apply_ops(store, fs.remove(path))
        elif op == "rename":
            src = rng.choice(live_files)
            dst = f"/r{counter}"
            counter += 1
            apply_ops(store, fs.rename(src, dst))
            live_files[live_files.index(src)] = dst
        if rng.random() < 0.3:
            balancer.probe_round()
    sim.run()  # drain removals and stabilizations

    # Every live block has a physical holder that is a real node.
    names = set(ring.names())
    for key in store.directory.keys():
        assert store.physical_at.get(key) in names
    # Loads derived from ranges partition the directory.
    assert sum(store.primary_loads().values()) == len(store.directory)
    # No dangling physical entries for removed blocks.
    for key in store.physical_at:
        assert key in store.directory


# ----------------------------------------------------------------------
# Preorder-key ordering for random directory trees


@settings(deadline=None, max_examples=30)
@given(st.lists(st.tuples(st.integers(0, 3), st.booleans()), min_size=1, max_size=25))
def test_random_tree_preorder_matches_key_order(moves):
    """Creating a random tree, the walk order of creation-ordered children
    agrees with key order (preorder traversal <=> sorted keys)."""
    fs = DhtFileSystem(D2KeyScheme("vol"))
    fs.format()
    dirs = ["/"]
    created = []
    counter = 0
    for depth_choice, make_dir in moves:
        parent = dirs[depth_choice % len(dirs)]
        base = parent.rstrip("/")
        counter += 1
        if make_dir:
            path = f"{base}/d{counter}"
            fs.mkdir(path)
            dirs.append(path)
        else:
            path = f"{base}/f{counter}"
            fs.create(path, size=1000)
            created.append(path)

    # Keys of files, in namespace preorder (children in slot order).
    def preorder(directory, out):
        for name in sorted(directory.children,
                           key=lambda n: directory.child_slots[n]):
            child = directory.children[name]
            if hasattr(child, "children"):
                preorder(child, out)
            else:
                out.append(fs.scheme.file_block_key(child, 0, child.version))

    keys = []
    preorder(fs.namespace.root, keys)
    assert keys == sorted(keys)


# ----------------------------------------------------------------------
# Balancer bound under random key distributions


@settings(deadline=None, max_examples=15)
@given(st.integers(min_value=0, max_value=2**32),
       st.sampled_from([0.0001, 0.01, 0.5]))
def test_balancer_bound_for_arbitrary_distributions(seed, concentration):
    """Whatever the key distribution (from near-point-mass to spread),
    converged primary loads respect the t-factor bound."""
    rng = random.Random(seed)
    ring = Ring()
    positions = set()
    while len(positions) < 10:
        positions.add(rng.randrange(KEY_SPACE))
    for i, position in enumerate(sorted(positions)):
        ring.join(f"n{i}", position)
    sim = Simulator()
    store = StorageCoordinator(ring, sim)
    width = max(1, int(KEY_SPACE * concentration))
    base = rng.randrange(KEY_SPACE)
    for _ in range(300):
        store.write((base + rng.randrange(width)) % KEY_SPACE, 1)
    balancer = KargerRuhlBalancer(ring, store, rng=rng)
    balancer.balance_until_stable(max_rounds=250)
    loads = list(store.primary_loads().values())
    mean = sum(loads) / len(loads)
    assert max(loads) <= balancer.threshold * mean + 1
