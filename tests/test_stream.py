"""Tests for streaming export: JsonlWriter, Tracer.drain, stream_spans."""

import json

import pytest

from repro.obs.spans import NullTracer, Tracer, validate_span_dict
from repro.obs.stream import JsonlWriter, NullJsonlWriter, stream_spans


class TestJsonlWriter:
    def test_writes_one_object_per_line(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        with JsonlWriter(str(path)) as writer:
            writer.write({"b": 2, "a": 1})
            writer.write({"x": [1, 2]})
        lines = path.read_text().splitlines()
        assert [json.loads(line) for line in lines] == [
            {"a": 1, "b": 2},
            {"x": [1, 2]},
        ]
        # deterministic serialization: keys sorted
        assert lines[0] == '{"a": 1, "b": 2}'

    def test_counts_rows(self, tmp_path):
        with JsonlWriter(str(tmp_path / "r.jsonl")) as writer:
            assert writer.rows == 0
            writer.write({})
            writer.write({})
            assert writer.rows == 2

    def test_creates_parent_directory(self, tmp_path):
        path = tmp_path / "nested" / "deep" / "r.jsonl"
        with JsonlWriter(str(path)) as writer:
            writer.write({"ok": True})
        assert path.exists()

    def test_write_after_close_raises(self, tmp_path):
        writer = JsonlWriter(str(tmp_path / "r.jsonl"))
        writer.close()
        with pytest.raises(ValueError):
            writer.write({})
        writer.close()  # idempotent

    def test_null_writer_counts_only(self):
        with NullJsonlWriter() as writer:
            writer.write({"a": 1})
            writer.write({"a": 2})
        assert writer.rows == 2
        assert writer.path is None


class TestDrain:
    def test_drain_pops_only_finished(self):
        tracer = Tracer(sample=1.0, seed=1)
        root = tracer.start_trace("root", 0.0)
        child = tracer.start_span("child", 0.5, root)
        tracer.finish(child, 1.0)
        drained = tracer.drain()
        assert [d["name"] for d in drained] == ["child"]
        assert tracer.spans("root")  # open root stays buffered
        tracer.finish(root, 2.0)
        assert [d["name"] for d in tracer.drain()] == ["root"]

    def test_repeated_drains_see_each_span_once(self):
        tracer = Tracer(sample=1.0, seed=1)
        seen = []
        for i in range(5):
            root = tracer.start_trace(f"t{i}", float(i))
            tracer.finish(root, float(i) + 0.5)
            seen.extend(d["name"] for d in tracer.drain())
        assert seen == [f"t{i}" for i in range(5)]
        assert tracer.drain() == []
        assert tracer.finished == 5  # cumulative stats survive draining

    def test_drained_payloads_validate(self):
        tracer = Tracer(sample=1.0, seed=1)
        root = tracer.start_trace("op", 0.0, kind="test")
        tracer.finish(root, 1.0)
        for payload in tracer.drain():
            assert validate_span_dict(payload) == []


class TestStreamSpans:
    def test_streams_to_writer(self, tmp_path):
        tracer = Tracer(sample=1.0, seed=1)
        path = tmp_path / "spans.jsonl"
        with JsonlWriter(str(path)) as writer:
            for i in range(3):
                root = tracer.start_trace(f"t{i}", float(i))
                tracer.finish(root, float(i) + 1.0)
                assert stream_spans(tracer, writer) == 1
            assert stream_spans(tracer, writer) == 0
        assert len(path.read_text().splitlines()) == 3

    def test_null_tracer_is_noop(self):
        writer = NullJsonlWriter()
        assert stream_spans(NullTracer(), writer) == 0
        assert writer.rows == 0

    def test_bounded_memory(self):
        """Draining every window keeps the buffer from accumulating."""
        tracer = Tracer(capacity=64, sample=1.0, seed=1)
        writer = NullJsonlWriter()
        for i in range(500):
            root = tracer.start_trace("op", float(i))
            tracer.finish(root, float(i) + 0.1)
            stream_spans(tracer, writer)
        assert writer.rows == 500
        assert len(tracer.spans()) == 0
        assert tracer.dropped == 500  # drained, not lost: all 500 exported


class TestDrainComposesWithTraceCli:
    """Satellite acceptance: a run exported as several drained JSONL
    segments must analyze identically to the same run exported whole."""

    def _run_workload(self, tracer):
        """Three fetch traces with lookup/transfer children."""
        for i in range(3):
            base = float(i)
            root = tracer.start_trace("fetch", base, op=i)
            tracer.finish(tracer.start_span("lookup", base, root), base + 0.2)
            transfer = tracer.start_span("transfer", base + 0.2, root)
            tracer.finish(
                tracer.start_span("tcp.transfer", base + 0.25, transfer),
                base + 0.5,
            )
            tracer.finish(transfer, base + 0.5)
            tracer.finish(root, base + 0.5)
            yield  # segment boundary: the caller may drain here

    def _cli_body(self, path, capsys):
        from repro.obs.tracecli import main as trace_main

        assert trace_main([path, "--require-complete"]) == 0
        out = capsys.readouterr().out
        # Everything below the "== <path>" header must match across runs.
        return out.split("\n", 1)[1]

    def test_segmented_export_matches_undrained_run(self, tmp_path, capsys):
        from repro.obs.tracecli import build_forest, load_spans

        # Run A: drain after every trace into numbered segment files.
        tracer = Tracer(sample=1.0, seed=7)
        segments = []
        for index, _ in enumerate(self._run_workload(tracer)):
            path = tmp_path / f"segment{index}.jsonl"
            with JsonlWriter(str(path)) as writer:
                stream_spans(tracer, writer)
            segments.append(path)
        assert len(segments) == 3 and all(p.exists() for p in segments)
        assert not tracer.drain()  # everything exported

        # Run B: identical workload, exported whole at the end.
        control = Tracer(sample=1.0, seed=7)
        for _ in self._run_workload(control):
            pass
        whole = control.export_jsonl(str(tmp_path / "whole.jsonl"))

        # Concatenating the segments reconstructs one valid trace file...
        combined = tmp_path / "combined.jsonl"
        combined.write_text(
            "".join(p.read_text() for p in segments), encoding="utf-8"
        )
        spans_combined, problems = load_spans(str(combined))
        assert not problems
        forest_combined = build_forest(spans_combined)
        forest_whole = build_forest(load_spans(whole)[0])
        assert len(forest_combined.roots) == len(forest_whole.roots) == 3
        assert not forest_combined.orphans and not forest_combined.open_spans

        def shape(forest):
            return sorted(
                (r.name, r.start, r.end, [c.name for c in r.children])
                for r in forest.roots
            )

        assert shape(forest_combined) == shape(forest_whole)

        # ...and the CLI's full analysis (attribution, critical paths,
        # slowest traces, flamegraph) is identical to the undrained run.
        assert self._cli_body(str(combined), capsys) == self._cli_body(
            whole, capsys
        )
