"""Tests for streaming export: JsonlWriter, Tracer.drain, stream_spans."""

import json

import pytest

from repro.obs.spans import NullTracer, Tracer, validate_span_dict
from repro.obs.stream import JsonlWriter, NullJsonlWriter, stream_spans


class TestJsonlWriter:
    def test_writes_one_object_per_line(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        with JsonlWriter(str(path)) as writer:
            writer.write({"b": 2, "a": 1})
            writer.write({"x": [1, 2]})
        lines = path.read_text().splitlines()
        assert [json.loads(line) for line in lines] == [
            {"a": 1, "b": 2},
            {"x": [1, 2]},
        ]
        # deterministic serialization: keys sorted
        assert lines[0] == '{"a": 1, "b": 2}'

    def test_counts_rows(self, tmp_path):
        with JsonlWriter(str(tmp_path / "r.jsonl")) as writer:
            assert writer.rows == 0
            writer.write({})
            writer.write({})
            assert writer.rows == 2

    def test_creates_parent_directory(self, tmp_path):
        path = tmp_path / "nested" / "deep" / "r.jsonl"
        with JsonlWriter(str(path)) as writer:
            writer.write({"ok": True})
        assert path.exists()

    def test_write_after_close_raises(self, tmp_path):
        writer = JsonlWriter(str(tmp_path / "r.jsonl"))
        writer.close()
        with pytest.raises(ValueError):
            writer.write({})
        writer.close()  # idempotent

    def test_null_writer_counts_only(self):
        with NullJsonlWriter() as writer:
            writer.write({"a": 1})
            writer.write({"a": 2})
        assert writer.rows == 2
        assert writer.path is None


class TestDrain:
    def test_drain_pops_only_finished(self):
        tracer = Tracer(sample=1.0, seed=1)
        root = tracer.start_trace("root", 0.0)
        child = tracer.start_span("child", 0.5, root)
        tracer.finish(child, 1.0)
        drained = tracer.drain()
        assert [d["name"] for d in drained] == ["child"]
        assert tracer.spans("root")  # open root stays buffered
        tracer.finish(root, 2.0)
        assert [d["name"] for d in tracer.drain()] == ["root"]

    def test_repeated_drains_see_each_span_once(self):
        tracer = Tracer(sample=1.0, seed=1)
        seen = []
        for i in range(5):
            root = tracer.start_trace(f"t{i}", float(i))
            tracer.finish(root, float(i) + 0.5)
            seen.extend(d["name"] for d in tracer.drain())
        assert seen == [f"t{i}" for i in range(5)]
        assert tracer.drain() == []
        assert tracer.finished == 5  # cumulative stats survive draining

    def test_drained_payloads_validate(self):
        tracer = Tracer(sample=1.0, seed=1)
        root = tracer.start_trace("op", 0.0, kind="test")
        tracer.finish(root, 1.0)
        for payload in tracer.drain():
            assert validate_span_dict(payload) == []


class TestStreamSpans:
    def test_streams_to_writer(self, tmp_path):
        tracer = Tracer(sample=1.0, seed=1)
        path = tmp_path / "spans.jsonl"
        with JsonlWriter(str(path)) as writer:
            for i in range(3):
                root = tracer.start_trace(f"t{i}", float(i))
                tracer.finish(root, float(i) + 1.0)
                assert stream_spans(tracer, writer) == 1
            assert stream_spans(tracer, writer) == 0
        assert len(path.read_text().splitlines()) == 3

    def test_null_tracer_is_noop(self):
        writer = NullJsonlWriter()
        assert stream_spans(NullTracer(), writer) == 0
        assert writer.rows == 0

    def test_bounded_memory(self):
        """Draining every window keeps the buffer from accumulating."""
        tracer = Tracer(capacity=64, sample=1.0, seed=1)
        writer = NullJsonlWriter()
        for i in range(500):
            root = tracer.start_trace("op", float(i))
            tracer.finish(root, float(i) + 0.1)
            stream_spans(tracer, writer)
        assert writer.rows == 500
        assert len(tracer.spans()) == 0
        assert tracer.dropped == 500  # drained, not lost: all 500 exported
