"""Tests for the namespace tree and 2-byte slot allocation."""

import pytest

from repro.core.keys import FIRST_USABLE_SLOT, MAX_PATH_LEVELS
from repro.fs.namespace import Directory, Namespace, NamespaceError, split_path


class TestSplitPath:
    def test_simple(self):
        assert split_path("/a/b/c") == ["a", "b", "c"]

    def test_root(self):
        assert split_path("/") == []

    def test_trailing_slash(self):
        assert split_path("/a/b/") == ["a", "b"]

    def test_relative_rejected(self):
        with pytest.raises(NamespaceError):
            split_path("a/b")


class TestCreate:
    def test_mkdir_and_resolve(self):
        ns = Namespace()
        ns.mkdir("/home")
        assert isinstance(ns.resolve_dir("/home"), Directory)

    def test_create_file(self):
        ns = Namespace()
        ns.mkdir("/home")
        node = ns.create_file("/home/f.txt", size=100)
        assert node.size == 100
        assert ns.resolve_file("/home/f.txt") is node

    def test_duplicate_rejected(self):
        ns = Namespace()
        ns.mkdir("/home")
        with pytest.raises(NamespaceError):
            ns.mkdir("/home")

    def test_missing_parent_rejected(self):
        with pytest.raises(NamespaceError):
            Namespace().create_file("/no/such/file")

    def test_makedirs(self):
        ns = Namespace()
        ns.makedirs("/a/b/c")
        assert isinstance(ns.resolve_dir("/a/b/c"), Directory)

    def test_makedirs_idempotent(self):
        ns = Namespace()
        ns.makedirs("/a/b")
        ns.makedirs("/a/b/c")
        assert ns.exists("/a/b/c")

    def test_makedirs_through_file_rejected(self):
        ns = Namespace()
        ns.create_file("/f")
        with pytest.raises(NamespaceError):
            ns.makedirs("/f/sub")

    def test_resolve_file_on_dir_rejected(self):
        ns = Namespace()
        ns.mkdir("/d")
        with pytest.raises(NamespaceError):
            ns.resolve_file("/d")


class TestSlots:
    def test_slots_start_at_first_usable(self):
        ns = Namespace()
        ns.mkdir("/a")
        assert ns.root.child_slots["a"] == FIRST_USABLE_SLOT

    def test_sequential_slots(self):
        ns = Namespace()
        for i in range(5):
            ns.create_file(f"/f{i}")
        slots = [ns.root.child_slots[f"f{i}"] for i in range(5)]
        assert slots == sorted(slots)
        assert len(set(slots)) == 5

    def test_slot_path_extends_parent(self):
        ns = Namespace()
        ns.makedirs("/a/b")
        node = ns.create_file("/a/b/f")
        b = ns.resolve_dir("/a/b")
        assert node.slot_path[:-1] == b.slot_path
        assert len(node.slot_path) == 3

    def test_removed_slot_reused(self):
        ns = Namespace()
        ns.create_file("/f")
        slot = ns.root.child_slots["f"]
        ns.remove("/f")
        ns.create_file("/g")
        assert ns.root.child_slots["g"] == slot

    def test_deep_path_overflows(self):
        ns = Namespace()
        path = ""
        for i in range(MAX_PATH_LEVELS + 2):
            path += f"/d{i}"
            ns.mkdir(path)
        leaf = ns.resolve_dir(path)
        assert len(leaf.slot_path) == MAX_PATH_LEVELS
        assert len(leaf.overflow) == 2

    def test_overflow_children_inherit(self):
        ns = Namespace()
        path = ""
        for i in range(MAX_PATH_LEVELS):
            path += f"/d{i}"
            ns.mkdir(path)
        node = ns.create_file(path + "/deep.txt")
        assert len(node.slot_path) == MAX_PATH_LEVELS
        assert node.overflow == ("deep.txt",)


class TestRemove:
    def test_remove_file(self):
        ns = Namespace()
        ns.create_file("/f")
        ns.remove("/f")
        assert not ns.exists("/f")

    def test_remove_empty_dir(self):
        ns = Namespace()
        ns.mkdir("/d")
        ns.remove("/d")
        assert not ns.exists("/d")

    def test_remove_nonempty_dir_rejected(self):
        ns = Namespace()
        ns.makedirs("/d")
        ns.create_file("/d/f")
        with pytest.raises(NamespaceError):
            ns.remove("/d")

    def test_remove_missing_rejected(self):
        with pytest.raises(NamespaceError):
            Namespace().remove("/ghost")


class TestRename:
    def test_rename_keeps_slot_path(self):
        """The core D2 property: renamed objects keep their original keys."""
        ns = Namespace()
        ns.makedirs("/a")
        ns.makedirs("/b")
        node = ns.create_file("/a/f")
        original = node.slot_path
        ns.rename("/a/f", "/b/g")
        assert ns.resolve_file("/b/g") is node
        assert node.slot_path == original
        assert not ns.exists("/a/f")

    def test_vacated_slot_stays_reserved(self):
        ns = Namespace()
        ns.makedirs("/a")
        ns.makedirs("/b")
        node = ns.create_file("/a/f")
        slot = ns.resolve_dir("/a").child_slots["f"]
        ns.rename("/a/f", "/b/f")
        fresh = ns.create_file("/a/new")
        # The new file must NOT reuse the renamed-away slot: the moved
        # file's keys still embed it.
        assert ns.resolve_dir("/a").child_slots["new"] != slot

    def test_rename_directory_moves_subtree(self):
        ns = Namespace()
        ns.makedirs("/a/sub")
        ns.create_file("/a/sub/f")
        ns.makedirs("/b")
        ns.rename("/a/sub", "/b/sub")
        assert ns.exists("/b/sub/f")
        assert not ns.exists("/a/sub")

    def test_rename_into_self_rejected(self):
        ns = Namespace()
        ns.makedirs("/a/b")
        with pytest.raises(NamespaceError):
            ns.rename("/a", "/a/b/a")

    def test_rename_over_existing_rejected(self):
        ns = Namespace()
        ns.create_file("/f")
        ns.create_file("/g")
        with pytest.raises(NamespaceError):
            ns.rename("/f", "/g")

    def test_rename_counter(self):
        ns = Namespace()
        ns.create_file("/f")
        ns.rename("/f", "/g")
        assert ns.renames == 1


class TestTraversal:
    def build(self):
        ns = Namespace()
        ns.makedirs("/home/alice")
        ns.create_file("/home/alice/a.txt", size=10)
        ns.create_file("/home/alice/b.txt", size=20)
        ns.makedirs("/srv")
        return ns

    def test_walk_preorder(self):
        ns = self.build()
        paths = [path for path, _ in ns.walk()]
        assert paths[0] == "/"
        assert paths.index("/home") < paths.index("/home/alice")
        assert paths.index("/home/alice") < paths.index("/home/alice/a.txt")

    def test_files_listing(self):
        ns = self.build()
        files = dict(ns.files())
        assert set(files) == {"/home/alice/a.txt", "/home/alice/b.txt"}

    def test_totals(self):
        ns = self.build()
        assert ns.total_file_bytes() == 30
        assert ns.file_count() == 2

    def test_ancestors_of(self):
        ns = self.build()
        chain = ns.ancestors_of("/home/alice/a.txt")
        assert [d.name for d in chain] == ["/", "home", "alice"]
