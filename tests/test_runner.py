"""Tests for the parallel grid runner, its disk cache, and the memo knobs."""

import json
import os
import pickle

import pytest

from repro.experiments import common
from repro.experiments.perf_runs import emit_performance_metrics, performance_matrix
from repro.runner import (
    CACHE_ENV,
    JOBS_ENV,
    RunCache,
    SCHEMA_VERSION,
    cache_key,
    cell_kind,
    execute_cell,
    last_stats,
    resolve_jobs,
    run_cells,
)

# A 2-cell performance grid small enough for tests but large enough to
# exercise real simulation (trace replay, metrics snapshots, pickling).
TINY_GRID = dict(
    systems=("d2",),
    modes=("seq", "para"),
    node_sizes=(12,),
    bandwidths_kbps=(1500.0,),
    users=2,
    days=0.25,
    n_windows=1,
    seed=5,
)

TINY_CELL = {
    "system": "d2",
    "mode": "seq",
    "n_nodes": 12,
    "bandwidth_kbps": 1500.0,
    "users": 2,
    "days": 0.25,
    "n_windows": 1,
    "scale_with_size": True,
    "base_size": 12,
    "seed": 5,
}


class FakeResult:
    """Picklable stand-in for a run result carrying a metrics snapshot."""

    def __init__(self, value, events=0):
        self.value = value
        self.metrics = {"counters": {"sim.events_fired": events}, "gauges": {}}

    def __eq__(self, other):
        return isinstance(other, FakeResult) and self.value == other.value


@cell_kind("test-echo")
def _echo_cell(params):
    return FakeResult(params["x"] * 2, events=params.get("events", 0))


@pytest.fixture(autouse=True)
def clean_runner_env(monkeypatch):
    """Isolate each test from the process memo and the runner env knobs."""
    common.clear_cache()
    for var in (CACHE_ENV, JOBS_ENV, common.MEMO_DISABLE_ENV, common.MEMO_MAX_ENV):
        monkeypatch.delenv(var, raising=False)
    yield
    common.clear_cache()


class TestCacheKey:
    def test_order_independent(self):
        assert cache_key("k", {"a": 1, "b": 2}) == cache_key("k", {"b": 2, "a": 1})

    def test_sensitive_to_params_and_kind(self):
        base = cache_key("k", {"a": 1})
        assert cache_key("k", {"a": 2}) != base
        assert cache_key("other", {"a": 1}) != base

    def test_stable_across_calls(self):
        assert cache_key("k", dict(TINY_CELL)) == cache_key("k", dict(TINY_CELL))

    def test_default_env_matches_legacy_scheme(self, monkeypatch):
        # Byte-identity guard: with no ambient vars set, keys must equal the
        # pre-fingerprint formula, so existing on-disk caches stay warm.
        import hashlib

        from repro.runner.cache import AMBIENT_ENV_KEYS

        for name in AMBIENT_ENV_KEYS:
            monkeypatch.delenv(name, raising=False)
        params = dict(TINY_CELL)
        legacy = hashlib.sha256(
            repr((SCHEMA_VERSION, "k", tuple(sorted(params.items())))).encode("utf-8")
        ).hexdigest()
        assert cache_key("k", params) == legacy

    def test_ambient_env_changes_key(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_SAMPLE", raising=False)
        base = cache_key("k", dict(TINY_CELL))
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "0.5")
        assert cache_key("k", dict(TINY_CELL)) != base
        # Empty string counts as unset: same bytes as the default key.
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "")
        assert cache_key("k", dict(TINY_CELL)) == base


class TestRunCache:
    def test_disabled_without_env(self):
        cache = RunCache.from_env()
        assert not cache.enabled
        hit, value = cache.get("k", {"a": 1})
        assert (hit, value) == (False, None)
        assert cache.put("k", {"a": 1}, 42) is None
        assert cache.misses == 1

    def test_roundtrip(self, tmp_path):
        cache = RunCache(str(tmp_path))
        params = {"a": 1, "b": 2.5}
        assert cache.get("k", params) == (False, None)
        path = cache.put("k", params, {"rows": [1, 2]})
        assert path is not None and os.path.exists(path)
        hit, value = cache.get("k", params)
        assert hit and value == {"rows": [1, 2]}
        assert (cache.hits, cache.misses) == (1, 1)

    def test_corrupted_entry_recovers(self, tmp_path):
        cache = RunCache(str(tmp_path))
        params = {"a": 1}
        path = cache.put("k", params, "good")
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        assert cache.get("k", params) == (False, None)
        assert cache.corrupt == 1
        assert not os.path.exists(path)  # dropped, will be recomputed
        cache.put("k", params, "recomputed")
        assert cache.get("k", params) == (True, "recomputed")

    def test_schema_mismatch_is_miss(self, tmp_path):
        cache = RunCache(str(tmp_path))
        params = {"a": 1}
        path = cache.put("k", params, "v")
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        payload["schema"] = SCHEMA_VERSION + 1
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)
        assert cache.get("k", params) == (False, None)
        assert cache.corrupt == 1

    def test_tilde_root_expands(self, tmp_path, monkeypatch):
        monkeypatch.setenv("HOME", str(tmp_path))
        cache = RunCache("~/cache")
        path = cache.path_for("k", {"a": 1})
        assert path.startswith(str(tmp_path))


class TestResolveJobs:
    def test_default_serial(self):
        assert resolve_jobs() == 1
        assert resolve_jobs(None) == 1

    def test_env_value(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "4")
        assert resolve_jobs() == 4

    def test_env_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        assert resolve_jobs() == 1

    def test_zero_means_cpu_count(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "8")
        assert resolve_jobs(2) == 2

    def test_negative_clamped(self):
        assert resolve_jobs(-3) == 1


class TestRunCells:
    def test_results_in_cell_order(self):
        cells = [{"x": i} for i in range(5)]
        values = run_cells("test-echo", cells)
        assert [v.value for v in values] == [0, 2, 4, 6, 8]

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown cell kind"):
            execute_cell("no-such-kind", {})

    def test_stats_without_cache(self):
        run_cells("test-echo", [{"x": 1}, {"x": 2}])
        stats = last_stats("test-echo")
        assert stats.cells_total == 2
        assert stats.cells_computed == 2
        assert stats.cells_cached == 0
        assert stats.cache_dir is None

    def test_cache_hit_and_miss(self, tmp_path):
        cache = RunCache(str(tmp_path))
        cells = [{"x": 1, "events": 7}, {"x": 2, "events": 9}]
        first = run_cells("test-echo", cells, cache=cache)
        s1 = last_stats("test-echo")
        assert (s1.cells_computed, s1.cells_cached) == (2, 0)
        assert s1.events_fired == 16  # fresh work is counted...
        second = run_cells("test-echo", cells, cache=cache)
        s2 = last_stats("test-echo")
        assert (s2.cells_computed, s2.cells_cached) == (0, 2)
        assert s2.events_fired == 0  # ...cached work is not
        assert first == second

    def test_cache_via_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path))
        run_cells("test-echo", [{"x": 3}])
        run_cells("test-echo", [{"x": 3}])
        assert last_stats("test-echo").cells_cached == 1

    def test_partial_cache_mixes_sources(self, tmp_path):
        cache = RunCache(str(tmp_path))
        run_cells("test-echo", [{"x": 1}], cache=cache)
        values = run_cells("test-echo", [{"x": 1}, {"x": 2}], cache=cache)
        stats = last_stats("test-echo")
        assert (stats.cells_cached, stats.cells_computed) == (1, 1)
        assert [v.value for v in values] == [2, 4]

    def test_stats_report_emitted(self, tmp_path):
        run_cells(
            "test-echo",
            [{"x": 1, "events": 5}],
            metrics_name="runner_echo",
            metrics_dir=str(tmp_path),
        )
        with open(tmp_path / "runner_echo.json") as handle:
            report = json.load(handle)
        counters = report["runs"][0]["counters"]
        assert counters["runner.cells_total"] == 1
        assert counters["runner.cells_computed"] == 1
        assert counters["sim.events_fired"] == 5


class TestParallelEquivalence:
    def test_parallel_matches_serial(self, tmp_path):
        serial = performance_matrix(**TINY_GRID)
        common.clear_cache()
        parallel = performance_matrix(**TINY_GRID, jobs=2)
        assert last_stats("performance").jobs == 2
        assert sorted(serial) == sorted(parallel)
        for key in serial:
            assert serial[key] == parallel[key], key
        # The emitted figure report must match byte for byte as well.
        serial_path = emit_performance_metrics(
            "eq_serial", serial, {}, metrics_dir=str(tmp_path)
        )
        parallel_path = emit_performance_metrics(
            "eq_parallel", parallel, {}, metrics_dir=str(tmp_path)
        )
        with open(serial_path) as handle:
            serial_report = json.load(handle)
        with open(parallel_path) as handle:
            parallel_report = json.load(handle)
        serial_report["name"] = parallel_report["name"] = "normalized"
        assert serial_report == parallel_report

    def test_second_run_does_zero_simulation_work(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path))
        performance_matrix(**TINY_GRID)
        first = last_stats("performance")
        assert first.cells_computed == 2
        assert first.events_fired > 0
        common.clear_cache()  # drop the in-process memo; only the disk remains
        performance_matrix(**TINY_GRID)
        second = last_stats("performance")
        assert (second.cells_cached, second.cells_computed) == (2, 0)
        assert second.events_fired == 0


class TestCliJobs:
    def test_jobs_flag_sets_env(self, capsys):
        from repro.__main__ import main

        assert main(["--jobs", "3", "list"]) == 0
        assert os.environ[JOBS_ENV] == "3"
        os.environ.pop(JOBS_ENV, None)

    def test_negative_jobs_rejected(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["--jobs", "-1", "list"])

    def test_jobs_default_leaves_env_alone(self, capsys):
        from repro.__main__ import main

        assert main(["list"]) == 0
        assert JOBS_ENV not in os.environ


class TestMemoKnobs:
    def test_fifo_eviction(self, monkeypatch):
        monkeypatch.setenv(common.MEMO_MAX_ENV, "3")
        calls = []

        def make(key):
            return common.cached(("memo-test", key), lambda: calls.append(key))

        for key in range(5):
            make(key)
        assert len(common._CACHE) == 3  # oldest two evicted
        make(0)  # was evicted -> recomputed
        assert calls == [0, 1, 2, 3, 4, 0]
        make(4)  # still resident -> memo hit
        assert calls == [0, 1, 2, 3, 4, 0]

    def test_kill_switch_bypasses_memo(self, monkeypatch):
        monkeypatch.setenv(common.MEMO_DISABLE_ENV, "1")
        calls = []
        for _ in range(3):
            common.cached(("memo-test", "x"), lambda: calls.append(1))
        assert len(calls) == 3
        assert not common._CACHE

    def test_bad_memo_max_falls_back(self, monkeypatch):
        monkeypatch.setenv(common.MEMO_MAX_ENV, "lots")
        assert common.memo_max_entries() == common.DEFAULT_MEMO_MAX
        monkeypatch.setenv(common.MEMO_MAX_ENV, "-5")
        assert common.memo_max_entries() == 1


@cell_kind("test-health-row")
def _health_row_cell(params):
    """A churn-shaped result: a plain dict whose ``health`` key carries
    the monitor export (rows + summary)."""
    return {
        "level": params["level"],
        "health": {
            "window": 900.0,
            "summary": {
                "alerts_fired": params["fired"],
                "alerts_resolved": params["fired"],
                "alerts_active": 0,
                "by_severity": {"critical": params["fired"]},
            },
            "rows": [
                {"type": "series", "name": "ring.nodes", "kind": "gauge",
                 "labels": {}, "window": 0, "start": 0.0, "end": 900.0,
                 "count": 1, "value": 8},
            ],
        },
    }


class TestHealthExport:
    """Dict-shaped cell rows must surface their ``health`` payload.

    Regression: ``_iter_results`` flattens mappings into values, which
    strips the ``health`` key off churn-style dict rows — the runner
    then exported no health files and merged no alert counters.
    """

    def test_dict_rows_export_health_files_and_counters(
        self, tmp_path, monkeypatch
    ):
        metrics_dir = tmp_path / "metrics"
        monkeypatch.setenv(common.METRICS_DIR_ENV, str(metrics_dir))
        cells = [
            {"level": "calm", "fired": 1},
            {"level": "storm", "fired": 2},
        ]
        run_cells("test-health-row", cells, jobs=1, metrics_name="runner_hx")

        files = sorted(os.listdir(metrics_dir))
        assert files == [
            "runner_hx.health0.jsonl", "runner_hx.health1.jsonl",
            "runner_hx.json",
        ]
        with open(metrics_dir / "runner_hx.json") as fh:
            report = json.load(fh)
        assert report["params"]["health"] == [
            "runner_hx.health0.jsonl", "runner_hx.health1.jsonl",
        ]
        counters = report["runs"][0]["counters"]
        assert counters["health.alerts_fired"] == 3
        assert counters["health.alerts_fired.critical"] == 3
        assert counters["health.alerts_resolved"] == 3
        with open(metrics_dir / "runner_hx.health1.jsonl") as fh:
            rows = [json.loads(line) for line in fh]
        assert rows and rows[0]["name"] == "ring.nodes"
