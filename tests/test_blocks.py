"""Tests for the D2-FS block model (sizes, coverage, integrity)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fs.blocks import (
    BLOCK_SIZE,
    DIRECTORY_ENTRY_BYTES,
    INLINE_DATA_THRESHOLD,
    BlockRef,
    RootBlock,
    blocks_covering,
    data_block_count,
    data_block_sizes,
    directory_block_count,
    directory_block_sizes,
    inode_size,
    synthetic_content_hash,
)


class TestDataBlockCount:
    def test_inline_files_have_no_blocks(self):
        assert data_block_count(0) == 0
        assert data_block_count(INLINE_DATA_THRESHOLD) == 0

    def test_one_block(self):
        assert data_block_count(INLINE_DATA_THRESHOLD + 1) == 1
        assert data_block_count(BLOCK_SIZE) == 1

    def test_partial_last_block(self):
        assert data_block_count(BLOCK_SIZE + 1) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            data_block_count(-1)

    @given(st.integers(min_value=INLINE_DATA_THRESHOLD + 1, max_value=10 * BLOCK_SIZE))
    def test_sizes_sum_to_file_size(self, size):
        sizes = data_block_sizes(size)
        assert sum(sizes) == size
        assert all(0 < s <= BLOCK_SIZE for s in sizes)
        assert len(sizes) == data_block_count(size)

    def test_all_but_last_full(self):
        sizes = data_block_sizes(3 * BLOCK_SIZE + 100)
        assert sizes[:-1] == [BLOCK_SIZE] * 3
        assert sizes[-1] == 100


class TestBlocksCovering:
    def test_inline_file_covers_nothing(self):
        assert list(blocks_covering(0, 100, INLINE_DATA_THRESHOLD)) == []

    def test_whole_file(self):
        size = 3 * BLOCK_SIZE
        assert list(blocks_covering(0, size, size)) == [1, 2, 3]

    def test_single_block_region(self):
        size = 3 * BLOCK_SIZE
        assert list(blocks_covering(BLOCK_SIZE, 10, size)) == [2]

    def test_straddles_boundary(self):
        size = 3 * BLOCK_SIZE
        assert list(blocks_covering(BLOCK_SIZE - 5, 10, size)) == [1, 2]

    def test_clamped_to_file_size(self):
        size = 2 * BLOCK_SIZE
        assert list(blocks_covering(0, 100 * BLOCK_SIZE, size)) == [1, 2]

    def test_offset_beyond_file_empty(self):
        assert list(blocks_covering(10 * BLOCK_SIZE, 100, BLOCK_SIZE)) == []

    def test_zero_length_empty(self):
        assert list(blocks_covering(0, 0, 10 * BLOCK_SIZE)) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            blocks_covering(-1, 10, BLOCK_SIZE)

    @given(
        st.integers(min_value=0, max_value=20 * BLOCK_SIZE),
        st.integers(min_value=1, max_value=5 * BLOCK_SIZE),
        st.integers(min_value=INLINE_DATA_THRESHOLD + 1, max_value=20 * BLOCK_SIZE),
    )
    def test_covering_blocks_exist(self, offset, length, size):
        numbers = list(blocks_covering(offset, length, size))
        total = data_block_count(size)
        assert all(1 <= n <= total for n in numbers)
        assert numbers == sorted(numbers)


class TestInodeSize:
    def test_inline_data_in_inode(self):
        assert inode_size(100) > inode_size(0)
        assert inode_size(100) <= BLOCK_SIZE

    def test_grows_with_block_refs(self):
        assert inode_size(10 * BLOCK_SIZE) > inode_size(BLOCK_SIZE)

    def test_capped_at_block_size(self):
        assert inode_size(10**9) <= BLOCK_SIZE


class TestDirectoryBlocks:
    def test_empty_directory_one_block(self):
        assert directory_block_count(0) == 1

    def test_entries_per_block(self):
        per_block = BLOCK_SIZE // DIRECTORY_ENTRY_BYTES
        assert directory_block_count(per_block) == 1
        assert directory_block_count(per_block + 1) == 2

    def test_sizes_consistent(self):
        for entries in (0, 1, 100, 500):
            sizes = directory_block_sizes(entries)
            assert len(sizes) == directory_block_count(entries)
            assert all(0 < s <= BLOCK_SIZE for s in sizes)


class TestIntegrity:
    def test_content_hash_changes_with_version(self):
        assert synthetic_content_hash("f", 1) != synthetic_content_hash("f", 2)

    def test_content_hash_stable(self):
        assert synthetic_content_hash("f", 1) == synthetic_content_hash("f", 1)

    def test_root_block_sign_verify(self):
        root = RootBlock(volume=b"\x00" * 20, version=3,
                         directory_ref=BlockRef(key=1, content_hash=2, size=3))
        root.sign("alice")
        assert root.verify("alice")
        assert not root.verify("mallory")

    def test_unsigned_root_fails_verification(self):
        root = RootBlock(volume=b"\x00" * 20)
        assert not root.verify("alice")

    def test_tampered_root_fails(self):
        root = RootBlock(volume=b"\x00" * 20, version=1)
        root.sign("alice")
        root.version = 2
        assert not root.verify("alice")
