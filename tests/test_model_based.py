"""Model-based (stateful) tests: caches vs brute-force reference models."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.lookup_cache import LookupCache
from repro.dht.keyspace import in_interval
from repro.fs.blocks import BlockKind
from repro.fs.fslayer import BlockOp
from repro.fs.writeback_cache import WritebackCache

SMALL_KEYS = st.integers(min_value=0, max_value=999)


class LookupCacheMachine(RuleBasedStateMachine):
    """The cache must agree with a naive list-of-ranges model.

    Model: the most recently inserted unexpired range covering a key wins;
    the cache may conservatively miss (e.g. overlapping ranges hide one
    another) but must never return a node the model does not list for the
    key — a wrong *positive* would send clients to arbitrary nodes far
    more often than churn explains.
    """

    def __init__(self):
        super().__init__()
        self.cache = LookupCache(ttl=100.0)
        self.model = []  # list of (lo, hi, node, expires_at), newest last
        self.now = 0.0

    @rule(lo=SMALL_KEYS, hi=SMALL_KEYS, node=st.sampled_from("abcdef"))
    def insert(self, lo, hi, node):
        self.cache.insert(lo, hi, node, self.now)
        self.model.append((lo, hi, node, self.now + 100.0))

    @rule(delta=st.floats(min_value=0.0, max_value=60.0))
    def advance(self, delta):
        self.now += delta

    @rule(key=SMALL_KEYS)
    def probe(self, key):
        got = self.cache.probe(key, self.now)
        if got is not None:
            candidates = {
                node
                for lo, hi, node, expires in self.model
                if expires > self.now and (lo == hi or in_interval(key, lo, hi))
            }
            assert got in candidates, (
                f"cache returned {got!r} for key {key}, model allows {candidates}"
            )

    @invariant()
    def stats_consistent(self):
        stats = self.cache.stats
        assert stats.hits + stats.misses == stats.lookups
        assert 0.0 <= stats.miss_rate <= 1.0


TestLookupCacheModel = LookupCacheMachine.TestCase
TestLookupCacheModel.settings = settings(max_examples=40, deadline=None)


class WritebackCacheMachine(RuleBasedStateMachine):
    """The write-back cache must flush exactly the newest version of every
    dirty identity, exactly once, and never resurrect removed identities."""

    idents = [f"f{i}" for i in range(5)]

    def __init__(self):
        super().__init__()
        self.cache = WritebackCache(flush_delay=30.0)
        self.now = 0.0
        self.version = 0
        # Model state: ident -> newest unflushed key, or REMOVED sentinel.
        self.pending = {}
        self.flushed_keys = []

    def _op(self, action, ident, key):
        return BlockOp(action, key, 100, BlockKind.DATA, ident, self.version)

    @rule(ident=st.sampled_from(idents))
    def write(self, ident):
        self.version += 1
        key = self.version  # unique key per version
        ops = [self._op("put", ident, key)]
        self.cache.write(ops, self.now)
        self.pending[ident] = key

    @rule(ident=st.sampled_from(idents))
    def remove(self, ident):
        if self.pending.get(ident) is None:
            return
        key = self.pending[ident]
        self.cache.write([self._op("remove", ident, key)], self.now)
        self.pending[ident] = None  # removed while dirty: must never flush

    @rule(delta=st.floats(min_value=0.1, max_value=40.0))
    def advance_and_flush(self, delta):
        self.now += delta
        for op in self.cache.flush_due(self.now):
            if op.action == "put":
                self.flushed_keys.append((op.ident, op.key))
                assert self.pending.get(op.ident) == op.key, (
                    f"flushed {op.key} but model expected "
                    f"{self.pending.get(op.ident)}"
                )
                self.pending[op.ident] = "FLUSHED"

    @rule()
    def final_flush(self):
        for op in self.cache.flush_all():
            if op.action == "put":
                self.flushed_keys.append((op.ident, op.key))
                assert self.pending.get(op.ident) == op.key
                self.pending[op.ident] = "FLUSHED"

    @invariant()
    def no_duplicate_flushes(self):
        assert len(self.flushed_keys) == len(set(self.flushed_keys))

    @invariant()
    def removed_never_flushed(self):
        flushed_idents_keys = set(self.flushed_keys)
        for ident, state in self.pending.items():
            if state is None:  # removed while dirty
                # None of this ident's unflushed versions may appear.
                assert all(i != ident or (i, k) in flushed_idents_keys
                           for i, k in flushed_idents_keys)


TestWritebackCacheModel = WritebackCacheMachine.TestCase
TestWritebackCacheModel.settings = settings(max_examples=40, deadline=None)


class RingDirectoryMachine(RuleBasedStateMachine):
    """Block directory range queries must match a brute-force set under
    interleaved adds, removes, and queries."""

    def __init__(self):
        super().__init__()
        from repro.store.block_store import BlockDirectory

        self.directory = BlockDirectory()
        self.model = {}

    @rule(key=SMALL_KEYS, size=st.integers(min_value=0, max_value=8192))
    def put(self, key, size):
        self.directory.put(key, size)
        self.model[key] = size

    @rule(key=SMALL_KEYS)
    def discard(self, key):
        self.directory.discard(key)
        self.model.pop(key, None)

    @rule(lo=SMALL_KEYS, hi=SMALL_KEYS)
    def range_query(self, lo, hi):
        got = sorted(self.directory.keys_in_range(lo, hi))
        expected = sorted(
            k for k in self.model if lo == hi or in_interval(k, lo, hi)
        )
        assert got == expected

    @invariant()
    def totals_match(self):
        assert len(self.directory) == len(self.model)
        assert self.directory.total_bytes == sum(self.model.values())


TestRingDirectoryModel = RingDirectoryMachine.TestCase
TestRingDirectoryModel.settings = settings(max_examples=40, deadline=None)
