"""Tests for replica placement helpers and consistent hashing."""

import random

import pytest

from repro.dht.consistent_hashing import (
    describe_balance,
    hashed_block_key,
    hashed_key,
    node_id_for_name,
    random_node_ids,
    uniform_spread_ids,
)
from repro.dht.keyspace import KEY_SPACE
from repro.dht.replication import (
    group_available,
    nodes_for_keys,
    placement_bytes,
    placement_loads,
    replica_group,
    replica_groups_for_keys,
)
from repro.dht.ring import Ring


@pytest.fixture
def ring():
    ring = Ring()
    for i in range(8):
        ring.join(f"n{i}", (i + 1) * (KEY_SPACE // 8) - 1)
    return ring


class TestReplicaGroup:
    def test_group_is_r_successors(self, ring):
        group = replica_group(ring, 0, 3)
        assert group == ["n0", "n1", "n2"]

    def test_groups_for_clustered_keys_collapse(self, ring):
        keys = [10, 20, 30]  # all in n0's arc
        groups = replica_groups_for_keys(ring, keys, 3)
        assert len(groups) == 1

    def test_groups_for_scattered_keys(self, ring):
        step = KEY_SPACE // 8
        keys = [5, step + 5, 4 * step + 5]
        groups = replica_groups_for_keys(ring, keys, 3)
        assert len(groups) == 3

    def test_nodes_for_keys_primary_only(self, ring):
        assert nodes_for_keys(ring, [10, 20]) == {"n0"}

    def test_nodes_for_keys_with_replicas(self, ring):
        assert nodes_for_keys(ring, [10], replicas=2) == {"n0", "n1"}

    def test_group_available(self):
        assert group_available({"a"}, ["a", "b", "c"])
        assert not group_available({"z"}, ["a", "b", "c"])
        assert not group_available(set(), ["a"])


class TestPlacementLoads:
    def test_block_counts(self, ring):
        loads = placement_loads(ring, [10, 20, KEY_SPACE // 2 + 10], replicas=2)
        assert sum(loads.values()) == 6  # 3 keys x 2 replicas
        assert loads["n0"] == 2
        assert set(loads) == set(ring.names())  # zero entries included

    def test_byte_volumes(self, ring):
        loads = placement_bytes(ring, [(10, 100), (20, 50)], replicas=1)
        assert loads["n0"] == 150
        assert sum(loads.values()) == 150


class TestConsistentHashing:
    def test_hashed_key_uniformity(self):
        """Hashed keys should spread across the whole ring."""
        keys = [hashed_key(f"obj{i}") for i in range(400)]
        buckets = [0] * 8
        for key in keys:
            buckets[key * 8 // KEY_SPACE] += 1
        assert min(buckets) > 20  # crude uniformity check

    def test_block_keys_distinct(self):
        keys = {hashed_block_key("/f", b, v) for b in range(5) for v in range(3)}
        assert len(keys) == 15

    def test_random_node_ids_distinct_sorted(self):
        ids = random_node_ids(100, random.Random(0))
        assert ids == sorted(ids)
        assert len(set(ids)) == 100

    def test_node_id_for_name_deterministic(self):
        assert node_id_for_name("a") == node_id_for_name("a")
        assert node_id_for_name("a") != node_id_for_name("b")

    def test_uniform_spread(self):
        ids = uniform_spread_ids(4)
        gaps = [b - a for a, b in zip(ids, ids[1:])]
        assert len(set(gaps)) == 1

    def test_uniform_spread_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            uniform_spread_ids(0)

    def test_describe_balance(self):
        stats = describe_balance([10, 10, 10, 10])
        assert stats["nsd"] == 0.0
        assert stats["max"] == 10
        assert describe_balance([])["count"] == 0

    def test_random_ids_balance_roughly(self):
        """Consistent hashing's classic O(log n) imbalance — sanity check."""
        rng = random.Random(5)
        ring = Ring()
        for i, node_id in enumerate(random_node_ids(64, rng)):
            ring.join(f"n{i}", node_id)
        keys = [rng.randrange(KEY_SPACE) for _ in range(6400)]
        loads = placement_loads(ring, keys, replicas=1)
        stats = describe_balance(loads.values())
        assert stats["mean"] == pytest.approx(100.0)
        assert stats["max"] < 12 * stats["mean"]  # log-factor spread
