"""Tests for the Figure-3 locality analysis."""

import pytest

from repro.analysis.locality import (
    analyze_locality,
    trace_block_accesses,
)
from repro.fs.blocks import BLOCK_SIZE
from repro.workloads.trace import CREATE, READ, RENAME, Trace, TraceRecord, WRITE


def read(t, path, user="u", offset=0, length=0):
    return TraceRecord(t, user, READ, path, offset=offset, length=length)


class TestBlockAccessExtraction:
    def test_read_expands_to_blocks(self):
        trace = Trace("t", [read(0.0, "/f", length=2 * BLOCK_SIZE)],
                      initial_files=[("/f", 2 * BLOCK_SIZE)])
        accesses = trace_block_accesses(trace)
        blocks = [b for _, b in accesses["u"]]
        assert blocks == [("/f", 0), ("/f", 1)]

    def test_zero_length_read_means_whole_file(self):
        trace = Trace("t", [read(0.0, "/f")], initial_files=[("/f", 3 * BLOCK_SIZE)])
        blocks = [b for _, b in trace_block_accesses(trace)["u"]]
        assert len(blocks) == 3

    def test_create_touches_all_blocks(self):
        trace = Trace("t", [TraceRecord(0.0, "u", CREATE, "/f", size=2 * BLOCK_SIZE)])
        blocks = [b for _, b in trace_block_accesses(trace)["u"]]
        assert len(blocks) == 2

    def test_write_extends_size(self):
        records = [
            TraceRecord(0.0, "u", CREATE, "/f", size=BLOCK_SIZE),
            TraceRecord(1.0, "u", WRITE, "/f", offset=BLOCK_SIZE, length=BLOCK_SIZE),
            read(2.0, "/f"),
        ]
        trace = Trace("t", records)
        blocks = [b for _, b in trace_block_accesses(trace)["u"]]
        assert ("/f", 1) in blocks  # the appended block
        assert blocks.count(("/f", 0)) >= 2  # created then re-read

    def test_rename_moves_size(self):
        records = [
            TraceRecord(0.0, "u", CREATE, "/a", size=BLOCK_SIZE),
            TraceRecord(1.0, "u", RENAME, "/a", dst_path="/b"),
            read(2.0, "/b"),
        ]
        blocks = [b for _, b in trace_block_accesses(Trace("t", records))["u"]]
        assert ("/b", 0) in blocks

    def test_unknown_size_from_length(self):
        trace = Trace("t", [read(0.0, "/web/obj", length=100)])
        blocks = [b for _, b in trace_block_accesses(trace)["u"]]
        assert blocks == [("/web/obj", 0)]


class TestScenarios:
    def make_trace(self):
        """Two users, each reading their own directory's files in one hour."""
        records = []
        files = []
        for user, d in (("u1", "/a"), ("u2", "/b")):
            for i in range(40):
                path = f"{d}/f{i:02d}"
                files.append((path, BLOCK_SIZE))
                records.append(read(i * 10.0, path, user=user, length=BLOCK_SIZE))
        return Trace("two-users", records, initial_files=files)

    def test_ordered_beats_traditional(self):
        result = analyze_locality(self.make_trace(), blocks_per_node=10)
        assert result.ordered < result.traditional
        assert result.lower_bound <= result.ordered

    def test_normalized_values(self):
        result = analyze_locality(self.make_trace(), blocks_per_node=10)
        rows = result.rows()
        assert rows[0]["normalized"] == 1.0
        assert rows[1]["normalized"] == pytest.approx(
            result.ordered / result.traditional
        )

    def test_lower_bound_formula(self):
        # 40 blocks per user-hour at 10 blocks/node -> bound = 4.
        result = analyze_locality(self.make_trace(), blocks_per_node=10)
        assert result.lower_bound == pytest.approx(4.0)

    def test_node_count_covers_universe(self):
        result = analyze_locality(self.make_trace(), blocks_per_node=10)
        assert result.n_nodes == 8  # 80 blocks / 10 per node

    def test_perfect_locality_single_node_per_user(self):
        """With huge nodes every scenario needs exactly one node."""
        result = analyze_locality(self.make_trace(), blocks_per_node=10_000)
        assert result.ordered == pytest.approx(1.0)
        assert result.lower_bound == pytest.approx(1.0)
