"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.system import build_deployment
from repro.dht.consistent_hashing import random_node_ids
from repro.dht.ring import Ring
from repro.lint.detsan import maybe_sanitize
from repro.sim.engine import Simulator
from repro.store.migration import StorageCoordinator
from repro.workloads.harvard import HarvardConfig, generate_harvard


@pytest.fixture(autouse=True)
def _detsan():
    """Run every test under the determinism sanitizer when $REPRO_DETSAN=1.

    A no-op by default; the CI detsan job (and any local
    ``REPRO_DETSAN=1 pytest`` run) turns the whole tier-1 suite into a
    dynamic determinism check: wall-clock reads and unseeded entropy
    raise :class:`repro.lint.detsan.DeterminismViolation`.
    """
    with maybe_sanitize():
        yield


@pytest.fixture
def rng():
    return random.Random(12345)


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def small_ring(rng):
    """A 16-node ring with reproducible random positions."""
    ring = Ring()
    for i, node_id in enumerate(random_node_ids(16, rng)):
        ring.join(f"n{i}", node_id)
    return ring


@pytest.fixture
def coordinator(small_ring, sim):
    return StorageCoordinator(small_ring, sim)


@pytest.fixture(scope="session")
def tiny_trace():
    """A small Harvard-like trace reused across analysis tests."""
    return generate_harvard(HarvardConfig(users=4, days=0.5, seed=99))


@pytest.fixture
def d2_deployment():
    return build_deployment("d2", 24, seed=5)
