"""Tests for the Karger-Ruhl active load balancer."""

import random

import pytest

from repro.dht.keyspace import KEY_SPACE
from repro.dht.load_balance import (
    KargerRuhlBalancer,
    max_over_mean,
    normalized_std_dev,
)
from repro.dht.ring import Ring


class FakeCoordinator:
    """In-memory coordinator: blocks are plain keys; moves are ring-only."""

    def __init__(self, ring, keys):
        self.ring = ring
        self.keys = sorted(keys)
        self.moves = []

    def primary_load(self, name):
        lo, hi = self.ring.range_of(name)
        if len(self.ring) == 1:
            return len(self.keys)
        from repro.dht.keyspace import in_interval

        return sum(1 for k in self.keys if in_interval(k, lo, hi))

    def primary_keys(self, name):
        lo, hi = self.ring.range_of(name)
        if len(self.ring) == 1:
            return list(self.keys)
        from repro.dht.keyspace import in_interval

        return [k for k in self.keys if in_interval(k, lo, hi)]

    def execute_move(self, mover, new_id):
        self.ring.change_position(mover, new_id)
        self.moves.append((mover, new_id))


def clustered_setup(n_nodes=12, n_keys=600, seed=1):
    """All keys packed into a tiny arc — the D2 key distribution."""
    rng = random.Random(seed)
    ring = Ring()
    ids = set()
    while len(ids) < n_nodes:
        ids.add(rng.randrange(KEY_SPACE))
    for i, node_id in enumerate(sorted(ids)):
        ring.join(f"n{i}", node_id)
    base = KEY_SPACE // 3
    keys = sorted(rng.randrange(base, base + 2**100) for _ in range(n_keys))
    coordinator = FakeCoordinator(ring, keys)
    return ring, coordinator, rng


class TestTriggerRule:
    def test_no_move_when_balanced(self):
        ring, coordinator, rng = clustered_setup()
        # Spread keys perfectly by construction: one node owns all keys,
        # so first craft a balanced system instead.
        ring2 = Ring()
        step = KEY_SPACE // 4
        for i in range(4):
            ring2.join(f"m{i}", (i + 1) * step - 1)
        keys = [i * (KEY_SPACE // 100) for i in range(100)]
        flat = FakeCoordinator(ring2, keys)
        balancer = KargerRuhlBalancer(ring2, flat, rng=random.Random(0))
        assert balancer.probe("m0") is None
        assert flat.moves == []

    def test_move_triggered_by_imbalance(self):
        ring, coordinator, rng = clustered_setup()
        balancer = KargerRuhlBalancer(ring, coordinator, rng=random.Random(0))
        loaded = max(ring.names(), key=coordinator.primary_load)
        light = next(n for n in ring.names() if coordinator.primary_load(n) == 0)
        record = balancer._maybe_move(light, loaded, now=0.0)
        assert record is not None
        assert record.mover == light
        assert coordinator.moves

    def test_move_halves_target_load(self):
        ring, coordinator, _ = clustered_setup()
        balancer = KargerRuhlBalancer(ring, coordinator, rng=random.Random(0))
        loaded = max(ring.names(), key=coordinator.primary_load)
        before = coordinator.primary_load(loaded)
        light = next(n for n in ring.names() if coordinator.primary_load(n) == 0)
        record = balancer._maybe_move(light, loaded, now=0.0)
        after_target = coordinator.primary_load(loaded)
        after_mover = coordinator.primary_load(light)
        assert after_target + after_mover == before
        assert abs(after_target - after_mover) <= 1

    def test_below_threshold_no_move(self):
        ring2 = Ring()
        ring2.join("a", KEY_SPACE // 2)
        ring2.join("b", KEY_SPACE - 1)
        # a owns 30 keys, b owns 10: ratio 3 < t=4.
        keys = [KEY_SPACE // 2 - 1000 + i for i in range(30)]
        keys += [KEY_SPACE // 2 + 1000 + i for i in range(10)]
        coordinator = FakeCoordinator(ring2, keys)
        balancer = KargerRuhlBalancer(ring2, coordinator, rng=random.Random(0))
        assert balancer._maybe_move("b", "a", 0.0) is None

    def test_threshold_below_two_rejected(self):
        ring, coordinator, _ = clustered_setup()
        with pytest.raises(ValueError):
            KargerRuhlBalancer(ring, coordinator, threshold=1.5)

    def test_tiny_target_not_split(self):
        ring2 = Ring()
        ring2.join("a", KEY_SPACE // 2)
        ring2.join("b", KEY_SPACE - 1)
        coordinator = FakeCoordinator(ring2, [KEY_SPACE // 2 - 5])
        balancer = KargerRuhlBalancer(ring2, coordinator, rng=random.Random(0))
        assert balancer._maybe_move("b", "a", 0.0) is None


class TestConvergence:
    def test_converges_to_constant_factor(self):
        ring, coordinator, _ = clustered_setup(n_nodes=16, n_keys=800)
        balancer = KargerRuhlBalancer(ring, coordinator, rng=random.Random(2))
        balancer.balance_until_stable(max_rounds=300)
        loads = [coordinator.primary_load(n) for n in ring.names()]
        mean = sum(loads) / len(loads)
        # Karger-Ruhl guarantee: max load within a constant factor of mean
        # in steady state with t = 4.
        assert max(loads) <= 4.0 * mean + 1

    def test_stable_after_convergence(self):
        ring, coordinator, _ = clustered_setup(n_nodes=10, n_keys=400)
        balancer = KargerRuhlBalancer(ring, coordinator, rng=random.Random(2))
        balancer.balance_until_stable(max_rounds=300)
        moves_before = len(coordinator.moves)
        balancer.probe_round()
        balancer.probe_round()
        assert len(coordinator.moves) <= moves_before + 1  # at most stragglers

    def test_imbalance_decreases(self):
        ring, coordinator, _ = clustered_setup(n_nodes=16, n_keys=800)
        before = normalized_std_dev(
            [coordinator.primary_load(n) for n in ring.names()]
        )
        balancer = KargerRuhlBalancer(ring, coordinator, rng=random.Random(2))
        balancer.balance_until_stable(max_rounds=300)
        after = normalized_std_dev(
            [coordinator.primary_load(n) for n in ring.names()]
        )
        assert after < before / 2

    def test_stats_recorded(self):
        ring, coordinator, _ = clustered_setup()
        balancer = KargerRuhlBalancer(ring, coordinator, rng=random.Random(2))
        balancer.balance_until_stable(max_rounds=100)
        assert balancer.stats.probes > 0
        assert balancer.stats.triggered == len(balancer.stats.moves)
        assert len(coordinator.moves) == len(balancer.stats.moves)


class TestProbeRound:
    def test_every_node_probes(self):
        ring, coordinator, _ = clustered_setup(n_nodes=8)
        balancer = KargerRuhlBalancer(ring, coordinator, rng=random.Random(0))
        before = balancer.stats.probes
        balancer.probe_round()
        assert balancer.stats.probes == before + 8

    def test_single_node_ring_noop(self):
        ring = Ring()
        ring.join("solo", 5)
        coordinator = FakeCoordinator(ring, [1, 2, 3])
        balancer = KargerRuhlBalancer(ring, coordinator, rng=random.Random(0))
        assert balancer.probe("solo") is None


class TestMetrics:
    def test_normalized_std_dev(self):
        assert normalized_std_dev([5, 5, 5]) == 0.0
        assert normalized_std_dev([]) == 0.0
        assert normalized_std_dev([0, 0]) == 0.0
        assert normalized_std_dev([0, 10]) == pytest.approx(1.0)

    def test_max_over_mean(self):
        assert max_over_mean([5, 5, 5]) == pytest.approx(1.0)
        assert max_over_mean([0, 10]) == pytest.approx(2.0)
        assert max_over_mean([]) == 0.0
