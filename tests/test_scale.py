"""Tests for workload scaling: replication, read streams, scale harness."""

import pytest

from repro.workloads.scale import (
    copies_for_size,
    replica_path,
    replicate_filesystem,
    scaled_read_stream,
)
from repro.workloads.trace import READ, Trace, TraceRecord


def base_trace():
    return Trace(
        "base",
        [TraceRecord(0.0, "u", READ, "/home/u/f")],
        initial_dirs=["/home", "/home/u"],
        initial_files=[("/home/u/f", 100)],
    )


class TestReplicate:
    def test_zero_copies_identity(self):
        trace = base_trace()
        assert replicate_filesystem(trace, 0) is trace

    def test_copies_multiply_storage(self):
        scaled = replicate_filesystem(base_trace(), 3)
        assert len(scaled.initial_files) == 4
        assert sum(s for _, s in scaled.initial_files) == 400

    def test_copies_under_prefixes(self):
        scaled = replicate_filesystem(base_trace(), 2)
        paths = [p for p, _ in scaled.initial_files]
        assert "/replica1/home/u/f" in paths
        assert "/replica2/home/u/f" in paths

    def test_access_stream_unchanged(self):
        trace = base_trace()
        scaled = replicate_filesystem(trace, 4)
        assert scaled.records == trace.records

    def test_replica_dirs_created(self):
        scaled = replicate_filesystem(base_trace(), 1)
        assert "/replica1" in scaled.initial_dirs
        assert "/replica1/home/u" in scaled.initial_dirs

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            replicate_filesystem(base_trace(), -1)

    def test_name_records_scaling(self):
        assert replicate_filesystem(base_trace(), 2).name == "base+2copies"

    def test_clone_mutation_does_not_alias_source(self):
        """The replicated trace owns its lists — mutating it must never
        reach back into the source trace."""
        trace = base_trace()
        scaled = replicate_filesystem(trace, 1)
        scaled.initial_files.append(("/injected", 1))
        scaled.initial_dirs.append("/injected-dir")
        scaled.records.append(TraceRecord(1.0, "u", READ, "/injected"))
        assert trace.initial_files == [("/home/u/f", 100)]
        assert trace.initial_dirs == ["/home", "/home/u"]
        assert len(trace.records) == 1


class TestCopiesForSize:
    def test_paper_example(self):
        assert copies_for_size(200, 1000) == 4

    def test_same_size_no_copies(self):
        assert copies_for_size(200, 200) == 0

    def test_rounding(self):
        assert copies_for_size(60, 240) == 3
        assert copies_for_size(60, 120) == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            copies_for_size(0, 100)
        with pytest.raises(ValueError):
            copies_for_size(100, -1)

    def test_base_larger_than_target(self):
        """Shrinking never asks for negative copies."""
        assert copies_for_size(1000, 200) == 0
        assert copies_for_size(1000, 1) == 0

    def test_exact_multiples(self):
        assert copies_for_size(250, 1000) == 3
        assert copies_for_size(100, 100000) == 999

    def test_rounds_to_nearest(self):
        # 1.4x rounds down (no copies), 1.6x rounds up (one copy).
        assert copies_for_size(100, 140) == 0
        assert copies_for_size(100, 160) == 1


class TestReplayability:
    def test_scaled_image_loads(self):
        from repro.core.system import build_deployment

        scaled = replicate_filesystem(base_trace(), 2)
        d = build_deployment("d2", 8, seed=1)
        d.load_initial_image(scaled)
        assert d.fs.namespace.exists("/replica2/home/u/f")


class TestScaledReadStream:
    TEMPLATE = [
        ("alice", "/a", 0, 10),
        ("bob", "/b", 5, 20),
        ("carol", "/c", 0, 30),
    ]

    def test_clone_zero_is_verbatim(self):
        out = list(scaled_read_stream(self.TEMPLATE, clones=1, ops_per_clone=3))
        assert out == self.TEMPLATE

    def test_clones_renamed_and_strided(self):
        out = list(scaled_read_stream(self.TEMPLATE, clones=2, ops_per_clone=3))
        assert out[:3] == self.TEMPLATE
        # clone 1 starts one record later and is a distinct principal
        assert out[3] == ("bob~1", "/b", 5, 20)
        assert {u for u, *_ in out[3:]} == {"bob~1", "carol~1", "alice~1"}

    def test_replica_round_robin(self):
        out = list(
            scaled_read_stream(self.TEMPLATE, clones=3, ops_per_clone=1, copies=1)
        )
        assert [path for _, path, _, _ in out] == ["/a", "/replica1/b", "/c"]

    def test_replica_path_helper(self):
        assert replica_path("/x/y", 0) == "/x/y"
        assert replica_path("/x/y", 4) == "/replica4/x/y"

    def test_ops_capped_at_template_size(self):
        out = list(scaled_read_stream(self.TEMPLATE, clones=2, ops_per_clone=99))
        assert len(out) == 6  # no within-clone repeats

    def test_lazy_and_empty(self):
        assert list(scaled_read_stream([], clones=5, ops_per_clone=3)) == []
        stream = scaled_read_stream(self.TEMPLATE, clones=10**9, ops_per_clone=3)
        assert next(stream)[0] == "alice"  # generator: no materialization

    def test_invalid_args(self):
        for kwargs in (
            {"clones": 0, "ops_per_clone": 1},
            {"clones": 1, "ops_per_clone": 0},
            {"clones": 1, "ops_per_clone": 1, "copies": -1},
        ):
            with pytest.raises(ValueError):
                list(scaled_read_stream(self.TEMPLATE, **kwargs))


class TestScaleHarness:
    def test_routing_cell_deterministic_and_fast_path(self):
        from repro.analysis.scale import run_scale_routing

        a = run_scale_routing(n_nodes=64, ops=400, batch=128, cold_ops=50, seed=4)
        b = run_scale_routing(n_nodes=64, ops=400, batch=128, cold_ops=50, seed=4)
        assert a.deterministic_row() == b.deterministic_row()
        assert a.ops == 400 and a.windows == 4
        assert a.cold_ops == 50 and a.cold_wall_seconds > 0
        assert a.hops > 0 and a.messages == a.hops + a.ops

    def test_read_cell_smoke(self):
        from repro.analysis.scale import run_scale_read
        from repro.core.system import build_deployment
        from repro.obs.stream import NullJsonlWriter

        trace = replicate_filesystem(
            Trace(
                "t",
                [
                    TraceRecord(0.0, "u", READ, "/home/u/f", offset=0, length=50),
                    TraceRecord(1.0, "u", READ, "/missing", offset=0, length=1),
                ],
                initial_dirs=["/home", "/home/u"],
                initial_files=[("/home/u/f", 40000)],
            ),
            1,
        )
        d = build_deployment("d2", 8, seed=1)
        d.load_initial_image(trace)
        metrics = NullJsonlWriter()
        result = run_scale_read(
            d, trace, copies=1, users=6, ops_per_user=1, window=2,
            metrics_writer=metrics,
        )
        assert result.cell == "read"
        assert result.skipped == 1          # the /missing read
        assert result.users == 6 and result.ops == 6
        assert result.windows == 3 == metrics.rows == result.streamed_rows
        assert result.fetches >= result.ops  # inode + data blocks
        assert len(result.rss_curve_kb) == 3

    def test_read_cell_replays_replica_images(self):
        """Clones beyond the first replica land on /replicaN paths and
        still resolve, producing the same per-op fetch counts."""
        from repro.analysis.scale import run_scale_read
        from repro.core.system import build_deployment

        trace = replicate_filesystem(
            Trace(
                "t",
                [TraceRecord(0.0, "u", READ, "/home/u/f", offset=0, length=100)],
                initial_dirs=["/home", "/home/u"],
                initial_files=[("/home/u/f", 100)],
            ),
            2,
        )
        d = build_deployment("d2", 4, seed=2)
        d.load_initial_image(trace)
        result = run_scale_read(d, trace, copies=2, users=3, ops_per_user=1)
        assert result.ops == 3 and result.skipped == 0


class TestBenchTrajectorySchema:
    """BENCH_scale.json run entries carry an explicit per-entry schema."""

    def _result(self):
        from repro.analysis.scale import ScaleCellResult

        return ScaleCellResult(
            cell="routing", n_nodes=8, users=0, ops=10, windows=1,
            hops=20, messages=30, fetches=0, skipped=0, checksum="ab",
            streamed_rows=0, streamed_spans=0,
        )

    def test_migrate_stamps_unversioned_entries(self):
        from repro.experiments.scale_matrix import migrate_run

        legacy = {"label": "pr7", "cells": [{"cell": "routing"}]}
        migrated = migrate_run(legacy)
        assert migrated["schema"] == 1
        assert "schema" not in legacy  # original left untouched
        versioned = {"label": "x", "schema": 2, "cells": [{"cell": "read"}]}
        assert migrate_run(versioned) is versioned

    def test_validate_run_reports_problems(self):
        from repro.experiments.scale_matrix import RUN_SCHEMA, validate_run

        good = {"label": "x", "schema": RUN_SCHEMA,
                "cells": [{"cell": "read"}]}
        assert validate_run(good, 0) == []
        problems = validate_run(
            {"label": "", "schema": RUN_SCHEMA + 1, "cells": "nope"}, 3
        )
        assert len(problems) == 3
        assert all(p.startswith("runs[3]") for p in problems)
        assert validate_run("garbage", 0) == ["runs[0]: not an object"]

    def test_record_appends_versioned_and_migrates_on_load(self, tmp_path):
        import json

        from repro.experiments.scale_matrix import (
            BENCH_SCHEMA,
            RUN_SCHEMA,
            load_trajectory,
            record_trajectory,
        )

        target = tmp_path / "BENCH_scale.json"
        # Seed a pre-versioning document (the committed pr7 shape).
        target.write_text(json.dumps({
            "schema": BENCH_SCHEMA,
            "runs": [{"label": "pr7", "cells": [{"cell": "routing"}]}],
        }))
        record_trajectory([self._result()], path=str(target), label="pr9")
        document = load_trajectory(str(target))
        assert [(r["label"], r["schema"]) for r in document["runs"]] == [
            ("pr7", 1), ("pr9", RUN_SCHEMA),
        ]

    def test_load_rejects_corrupt_documents(self, tmp_path):
        import json

        import pytest as _pytest

        from repro.experiments.scale_matrix import load_trajectory

        target = tmp_path / "BENCH_scale.json"
        target.write_text(json.dumps({"schema": 99, "runs": []}))
        with _pytest.raises(ValueError):
            load_trajectory(str(target))
        target.write_text(json.dumps({
            "schema": 1,
            "runs": [{"label": "", "schema": 1, "cells": []}],
        }))
        with _pytest.raises(ValueError):
            load_trajectory(str(target))

    def test_committed_trajectory_validates(self):
        import os

        from repro.experiments.scale_matrix import load_trajectory

        committed = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_scale.json",
        )
        document = load_trajectory(committed)
        assert all("schema" in run for run in document["runs"])
