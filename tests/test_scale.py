"""Tests for workload scaling by file-system replication."""

import pytest

from repro.workloads.scale import copies_for_size, replicate_filesystem
from repro.workloads.trace import READ, Trace, TraceRecord


def base_trace():
    return Trace(
        "base",
        [TraceRecord(0.0, "u", READ, "/home/u/f")],
        initial_dirs=["/home", "/home/u"],
        initial_files=[("/home/u/f", 100)],
    )


class TestReplicate:
    def test_zero_copies_identity(self):
        trace = base_trace()
        assert replicate_filesystem(trace, 0) is trace

    def test_copies_multiply_storage(self):
        scaled = replicate_filesystem(base_trace(), 3)
        assert len(scaled.initial_files) == 4
        assert sum(s for _, s in scaled.initial_files) == 400

    def test_copies_under_prefixes(self):
        scaled = replicate_filesystem(base_trace(), 2)
        paths = [p for p, _ in scaled.initial_files]
        assert "/replica1/home/u/f" in paths
        assert "/replica2/home/u/f" in paths

    def test_access_stream_unchanged(self):
        trace = base_trace()
        scaled = replicate_filesystem(trace, 4)
        assert scaled.records == trace.records

    def test_replica_dirs_created(self):
        scaled = replicate_filesystem(base_trace(), 1)
        assert "/replica1" in scaled.initial_dirs
        assert "/replica1/home/u" in scaled.initial_dirs

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            replicate_filesystem(base_trace(), -1)

    def test_name_records_scaling(self):
        assert replicate_filesystem(base_trace(), 2).name == "base+2copies"


class TestCopiesForSize:
    def test_paper_example(self):
        assert copies_for_size(200, 1000) == 4

    def test_same_size_no_copies(self):
        assert copies_for_size(200, 200) == 0

    def test_rounding(self):
        assert copies_for_size(60, 240) == 3
        assert copies_for_size(60, 120) == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            copies_for_size(0, 100)


class TestReplayability:
    def test_scaled_image_loads(self):
        from repro.core.system import build_deployment

        scaled = replicate_filesystem(base_trace(), 2)
        d = build_deployment("d2", 8, seed=1)
        d.load_initial_image(scaled)
        assert d.fs.namespace.exists("/replica2/home/u/f")
