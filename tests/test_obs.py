"""Tests for the observability spine: metrics, events, reports, CLI."""

import json

import pytest

from repro.obs import (
    BALANCE_MOVE,
    LOOKUP_HIT,
    LOOKUP_MISS,
    EventError,
    EventTracer,
    MetricsError,
    MetricsRegistry,
    build_report,
    load_report,
    snapshot_run,
    summarize,
    totals,
    validate_report,
    write_report,
)
from repro.obs.__main__ import main as obs_main


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_inc_rejected(self):
        counter = MetricsRegistry().counter("x")
        with pytest.raises(MetricsError):
            counter.inc(-1)

    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricsError):
            registry.gauge("x")


class TestGauge:
    def test_set_overwrites(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.set(3)
        assert gauge.value == 3


class TestHistogram:
    def test_exact_stats(self):
        histo = MetricsRegistry().histogram("h")
        for v in (1.0, 2.0, 3.0, 4.0):
            histo.observe(v)
        assert histo.count == 4
        assert histo.total == 10.0
        assert histo.mean == 2.5
        assert histo.min == 1.0
        assert histo.max == 4.0

    def test_reservoir_is_bounded(self):
        histo = MetricsRegistry().histogram("h", reservoir_size=16)
        for v in range(10_000):
            histo.observe(v)
        assert histo.count == 10_000
        assert len(histo._reservoir) == 16

    def test_percentiles_on_small_sample(self):
        histo = MetricsRegistry().histogram("h")
        for v in range(101):
            histo.observe(v)
        assert histo.percentile(0) == 0
        assert histo.percentile(50) == 50
        assert histo.percentile(100) == 100
        with pytest.raises(MetricsError):
            histo.percentile(101)

    def test_reservoir_percentiles_roughly_uniform(self):
        histo = MetricsRegistry().histogram("h", reservoir_size=256)
        for v in range(100_000):
            histo.observe(float(v))
        # Reservoir sampling keeps quantile estimates near the truth.
        assert abs(histo.percentile(50) - 50_000) < 15_000

    def test_deterministic_given_name(self):
        a = MetricsRegistry().histogram("same-name")
        b = MetricsRegistry().histogram("same-name")
        for v in range(5_000):
            a.observe(v)
            b.observe(v)
        assert a.snapshot() == b.snapshot()


class TestRegistrySnapshot:
    def test_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(1.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 7}
        assert snap["histograms"]["h"]["count"] == 1
        json.dumps(snap)  # JSON-ready


class TestEventTracer:
    def test_emit_and_counts(self):
        tracer = EventTracer()
        tracer.emit(LOOKUP_HIT, 1.0, key=5, node="n1")
        tracer.emit(LOOKUP_MISS, 2.0, key=6)
        tracer.emit(LOOKUP_HIT, 3.0, key=7, node="n2")
        assert tracer.counts() == {LOOKUP_HIT: 2, LOOKUP_MISS: 1}
        assert len(tracer.events(LOOKUP_HIT)) == 2
        assert tracer.events()[0].data["key"] == 5

    def test_unknown_kind_rejected(self):
        with pytest.raises(EventError):
            EventTracer().emit("no.such.kind", 0.0)

    def test_ring_buffer_drops_oldest_but_counts_stay_exact(self):
        tracer = EventTracer(capacity=4)
        for i in range(10):
            tracer.emit(BALANCE_MOVE, float(i), mover=f"n{i}")
        assert len(tracer) == 4
        assert tracer.dropped == 6
        assert tracer.counts() == {BALANCE_MOVE: 10}
        assert [e.time for e in tracer.events()] == [6.0, 7.0, 8.0, 9.0]

    def test_clear(self):
        tracer = EventTracer()
        tracer.emit(LOOKUP_HIT, 0.0)
        tracer.clear()
        assert len(tracer) == 0 and tracer.counts() == {}


class TestReport:
    def _sample_report(self):
        registry = MetricsRegistry()
        registry.counter("lookup.hits").inc(3)
        registry.gauge("store.blocks").set(10)
        registry.histogram("fetch.latency_seconds").observe(0.25)
        tracer = EventTracer()
        tracer.emit(LOOKUP_HIT, 0.0, key=1)
        run = snapshot_run({"system": "d2", "n_nodes": 8}, registry, tracer)
        return build_report("demo", [run], params={"seed": 1, "sizes": (8, 16)})

    def test_build_is_valid_and_json_safe(self):
        report = self._sample_report()
        assert validate_report(report) == []
        assert report["params"]["sizes"] == [8, 16]  # tuple coerced
        json.dumps(report)

    def test_totals_and_summary(self):
        report = self._sample_report()
        agg = totals(report)
        assert agg["counters"]["lookup.hits"] == 3
        assert agg["events"][LOOKUP_HIT] == 1
        text = summarize(report)
        assert "lookup.hits" in text and "system=d2" in text

    def test_validate_flags_problems(self):
        assert validate_report([]) != []
        assert validate_report({"schema": "wrong"})
        report = self._sample_report()
        report["runs"][0]["counters"]["bad"] = "not-a-number"
        assert any("counters" in p for p in validate_report(report))

    def test_round_trip(self, tmp_path):
        report = self._sample_report()
        path = write_report(report, str(tmp_path / "r.json"))
        assert load_report(path) == report


class TestCli:
    def _write(self, tmp_path, name="r.json"):
        registry = MetricsRegistry()
        registry.counter("lookup.misses").inc(2)
        report = build_report("cli-demo", [snapshot_run({"k": 1}, registry)])
        return write_report(report, str(tmp_path / name))

    def test_summary_ok(self, tmp_path, capsys):
        path = self._write(tmp_path)
        assert obs_main(["summary", path]) == 0
        out = capsys.readouterr().out
        assert "cli-demo" in out and "lookup.misses" in out

    def test_bare_path_defaults_to_summary(self, tmp_path, capsys):
        path = self._write(tmp_path)
        assert obs_main([path]) == 0
        assert "cli-demo" in capsys.readouterr().out

    def test_validate_ok_and_invalid(self, tmp_path, capsys):
        path = self._write(tmp_path)
        assert obs_main(["validate", path]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "nope"}')
        assert obs_main(["validate", str(bad)]) == 1

    def test_no_files_is_usage_error(self):
        assert obs_main(["summary"]) == 2


class TestSystemWiring:
    """The deployment's registry/tracer see real activity end to end."""

    def test_deployment_snapshot_counts_work(self):
        from repro.core.system import build_deployment

        deployment = build_deployment("d2", n_nodes=16, seed=3)
        deployment.bootstrap_volume()
        deployment.apply_fs_ops(deployment.fs.makedirs("/home/u"))
        deployment.apply_fs_ops(deployment.fs.create("/home/u/f", size=100_000))
        deployment.stabilize()
        snap = deployment.observability_snapshot()
        assert validate_report(
            build_report("t", [{"labels": {}, **snap}])
        ) == []
        assert snap["counters"]["store.writes"] > 0
        assert snap["events"]["node.join"] == 16
        assert snap["gauges"]["store.blocks"] > 0
        # balancing ran during stabilize
        assert snap["counters"]["balance.probes"] > 0

    def test_lookup_cache_shared_registry_aggregates(self):
        from repro.core.lookup_cache import LookupCache

        registry = MetricsRegistry()
        tracer = EventTracer()
        a = LookupCache(ttl=10.0, registry=registry, tracer=tracer)
        b = LookupCache(ttl=10.0, registry=registry, tracer=tracer)
        a.insert(0, 100, "n", now=0.0)
        assert a.probe(50, now=1.0) == "n"
        assert b.probe(50, now=1.0) is None
        # per-cache stats stay separate, shared registry aggregates
        assert a.stats.hits == 1 and b.stats.misses == 1
        assert registry.counter("lookup.hits").value == 1
        assert registry.counter("lookup.misses").value == 1
        assert tracer.counts() == {LOOKUP_HIT: 1, LOOKUP_MISS: 1}

    def test_balancer_stats_view_backed_by_registry(self):
        from repro.dht.load_balance import BalancerStats

        registry = MetricsRegistry()
        stats = BalancerStats(registry)
        stats.probes += 3
        assert stats.probes == 3
        assert registry.counter("balance.probes").value == 3


class TestExperimentEmission:
    def test_fig13_emits_valid_report(self, tmp_path):
        from repro.experiments.common import clear_cache
        from repro.experiments.fig13_cache_miss import run_fig13

        clear_cache()
        try:
            rows = run_fig13(
                metrics_dir=str(tmp_path),
                users=2,
                days=0.25,
                node_sizes=(8,),
                n_windows=1,
                seed=5,
            )
        finally:
            clear_cache()
        assert rows
        path = tmp_path / "fig13.json"
        assert path.exists()
        report = load_report(str(path))
        assert validate_report(report) == []
        agg = totals(report)
        # the acceptance counters: lookup hit/miss, balancer, pointers
        assert "lookup.hits" in agg["counters"]
        assert "lookup.misses" in agg["counters"]
        assert "lookup.stale_hits" in agg["counters"]
        assert "balance.probes" in agg["counters"]
        assert "balance.moves" in agg["counters"]
        assert "pointer.adopted" in agg["counters"]
        # and it round-trips through the CLI
        assert obs_main(["summary", str(path)]) == 0


class TestEventKindRegistration:
    def test_register_kind_allows_emission(self):
        from repro.obs import register_kind

        kind = register_kind("custom.test_kind")
        tracer = EventTracer()
        tracer.emit(kind, 1.0, detail="ok")
        assert tracer.counts() == {"custom.test_kind": 1}

    def test_register_kind_via_tracer_staticmethod(self):
        EventTracer.register_kind("custom.other_kind")
        EventTracer().emit("custom.other_kind", 0.0)

    def test_register_rejects_non_string(self):
        from repro.obs import register_kind

        with pytest.raises(EventError):
            register_kind("")
        with pytest.raises(EventError):
            register_kind(None)

    def test_base_kinds_still_frozen(self):
        from repro.obs import BASE_EVENT_KINDS

        assert isinstance(BASE_EVENT_KINDS, frozenset)
        assert LOOKUP_HIT in BASE_EVENT_KINDS

    def test_unregistered_kind_still_rejected(self):
        with pytest.raises(EventError):
            EventTracer().emit("never.registered.kind", 0.0)


class TestHistogramPercentileEdges:
    def test_empty_histogram(self):
        histo = MetricsRegistry().histogram("h")
        assert histo.percentile(0) == 0.0
        assert histo.percentile(50) == 0.0
        assert histo.percentile(100) == 0.0

    def test_single_observation(self):
        histo = MetricsRegistry().histogram("h")
        histo.observe(42.0)
        assert histo.percentile(0) == 42.0
        assert histo.percentile(50) == 42.0
        assert histo.percentile(100) == 42.0

    def test_p0_and_p100_hit_extremes(self):
        histo = MetricsRegistry().histogram("h")
        for v in range(100):
            histo.observe(float(v))
        assert histo.percentile(0) == 0.0
        assert histo.percentile(100) == 99.0

    def test_out_of_range_rejected(self):
        histo = MetricsRegistry().histogram("h")
        with pytest.raises(MetricsError):
            histo.percentile(-0.1)
        with pytest.raises(MetricsError):
            histo.percentile(100.1)

    def test_reservoir_determinism_under_overflow(self):
        def build():
            histo = MetricsRegistry().histogram("h", reservoir_size=32)
            for v in range(1000):
                histo.observe(float(v))
            return histo.snapshot(include_reservoir=True)

        assert build() == build()


class TestHistogramMerge:
    def _histo(self, name, values, reservoir_size=512):
        from repro.obs.metrics import Histogram

        histo = Histogram(name, reservoir_size)
        for v in values:
            histo.observe(float(v))
        return histo

    def test_exact_fields_combine(self):
        a = self._histo("h", range(100))
        b = self._histo("h", range(100, 200))
        a.merge(b)
        assert a.count == 200
        assert a.total == sum(range(200))
        assert a.min == 0.0 and a.max == 199.0

    def test_merge_empty_is_noop(self):
        a = self._histo("h", [1.0, 2.0])
        before = a.snapshot(include_reservoir=True)
        a.merge(self._histo("h", []))
        assert a.snapshot(include_reservoir=True) == before

    def test_merge_into_empty_adopts_other(self):
        a = self._histo("h", [])
        a.merge(self._histo("h", [5.0, 7.0]))
        assert a.count == 2 and a.min == 5.0 and a.max == 7.0
        assert a.percentile(50) in (5.0, 7.0)

    def test_overflowing_merge_is_deterministic_and_bounded(self):
        def merged():
            a = self._histo("h", range(500), reservoir_size=64)
            b = self._histo("h", range(500, 1000), reservoir_size=64)
            a.merge(b)
            return a.snapshot(include_reservoir=True)

        first, second = merged(), merged()
        assert first == second
        assert len(first["reservoir"]) <= 64

    def test_merged_percentiles_track_union(self):
        a = self._histo("h", range(100))
        b = self._histo("h", range(100, 200))
        a.merge(b)
        assert 80 <= a.percentile(50) <= 120
        assert a.percentile(99) > 150

    def test_from_snapshot_round_trip(self):
        from repro.obs.metrics import Histogram

        a = self._histo("h", range(50))
        snap = a.snapshot(include_reservoir=True)
        restored = Histogram.from_snapshot("h", snap)
        assert restored.count == a.count
        assert restored.total == a.total
        assert restored.snapshot(include_reservoir=True) == snap

    def test_registry_register_adopts_and_conflicts(self):
        from repro.obs.metrics import Histogram

        registry = MetricsRegistry()
        merged = self._histo("fetch.latency_seconds", [1.0])
        registry.register(merged)
        assert registry.get("fetch.latency_seconds") is merged
        registry.register(merged)  # same object: idempotent
        with pytest.raises(MetricsError):
            registry.register(Histogram("fetch.latency_seconds"))
