"""Tests for the end-to-end performance harness."""

import pytest

from repro.analysis.performance import (
    GroupTiming,
    PerformanceResult,
    compare,
    run_performance,
)
from repro.workloads.harvard import HarvardConfig, generate_harvard


@pytest.fixture(scope="module")
def trace():
    return generate_harvard(HarvardConfig(users=3, days=0.5, seed=4))


@pytest.fixture(scope="module")
def d2_seq(trace):
    return run_performance(trace, "d2", mode="seq", n_nodes=20, seed=1, n_windows=2)


@pytest.fixture(scope="module")
def trad_seq(trace):
    return run_performance(trace, "traditional", mode="seq", n_nodes=20, seed=1,
                           n_windows=2)


class TestRunPerformance:
    def test_produces_timings(self, d2_seq):
        assert d2_seq.group_timings
        assert all(t.completion >= 0 for t in d2_seq.group_timings)

    def test_same_groups_across_systems(self, d2_seq, trad_seq):
        d2_groups = set(d2_seq.timings_by_group())
        trad_groups = set(trad_seq.timings_by_group())
        overlap = d2_groups & trad_groups
        assert len(overlap) >= 0.8 * max(len(d2_groups), len(trad_groups))

    def test_d2_fewer_lookup_messages(self, d2_seq, trad_seq):
        assert d2_seq.lookup_messages < trad_seq.lookup_messages

    def test_d2_lower_miss_rate(self, d2_seq, trad_seq):
        assert d2_seq.mean_miss_rate < trad_seq.mean_miss_rate

    def test_invalid_mode_rejected(self, trace):
        with pytest.raises(ValueError):
            run_performance(trace, "d2", mode="both", n_nodes=10)

    def test_para_not_slower_than_seq_for_d2(self, trace, d2_seq):
        para = run_performance(trace, "d2", mode="para", n_nodes=20, seed=1,
                               n_windows=2)
        seq_total = sum(t.completion for t in d2_seq.group_timings)
        para_total = sum(t.completion for t in para.group_timings)
        assert para_total <= seq_total * 1.05


class TestCompare:
    def r(self, completions, system="x"):
        timings = [
            GroupTiming(user=f"u{i % 2}", start=float(i), fetches=1, completion=c)
            for i, c in enumerate(completions)
        ]
        return PerformanceResult(
            system=system, mode="seq", n_nodes=10, bandwidth_bps=1.0,
            group_timings=timings, lookup_messages=0, lookups=0,
            cache_hits=0, cache_misses=0, per_user_miss_rate={},
        )

    def test_speedup_of_identical_is_one(self):
        report = compare(self.r([1.0, 2.0]), self.r([1.0, 2.0]))
        assert report.overall == pytest.approx(1.0)

    def test_speedup_two_x(self):
        report = compare(self.r([2.0, 4.0]), self.r([1.0, 2.0]))
        assert report.overall == pytest.approx(2.0)

    def test_geometric_mean_not_arithmetic(self):
        # Ratios 4 and 0.25 must cancel geometrically.
        report = compare(self.r([4.0, 1.0]), self.r([1.0, 4.0]))
        assert report.overall == pytest.approx(1.0)

    def test_per_user_breakdown(self):
        report = compare(self.r([2.0, 2.0]), self.r([1.0, 4.0]))
        assert set(report.per_user) == {"u0", "u1"}
        assert report.per_user["u0"] == pytest.approx(2.0)
        assert report.per_user["u1"] == pytest.approx(0.5)
        assert report.fraction_above_one == pytest.approx(0.5)

    def test_pairs_recorded(self):
        report = compare(self.r([2.0]), self.r([1.0]))
        assert report.pairs == [(2.0, 1.0)]

    def test_unmatched_groups_skipped(self):
        base = self.r([2.0, 3.0])
        fast = self.r([1.0])
        report = compare(base, fast)
        assert len(report.pairs) == 1


class TestEndToEndShape:
    def test_d2_seq_speedup_at_least_parity(self, d2_seq, trad_seq):
        """At even this tiny scale D2 should not lose in seq mode."""
        report = compare(trad_seq, d2_seq)
        assert report.overall > 0.9
